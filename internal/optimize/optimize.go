package optimize

import (
	"fmt"

	"xqtp/internal/algebra"
)

// Options configures the optimizer.
type Options struct {
	// SingletonVars names free variables known to be bound to a single
	// node (document variables); used by the order analysis that gates the
	// bulk TreeJoin conversion.
	SingletonVars map[string]bool

	// MaxSteps caps the number of rule applications (defensive bound).
	MaxSteps int

	// DisablePositionalFirst turns off the Head rewrite (ablation: shows
	// the value of the cursor-style early exit of §5.3).
	DisablePositionalFirst bool

	// DisableBulkConversion turns off rule (b), forcing every step through
	// the per-tuple fallback (ablation: shows the value of bulk
	// set-at-a-time pattern evaluation).
	DisableBulkConversion bool

	// Trace, if non-nil, receives the plan after every rule application.
	Trace func(step int, plan algebra.Expr)
}

type optimizer struct {
	root           algebra.Expr
	singletons     map[string]bool
	letNames       map[string]bool
	usedFields     map[string]bool
	counter        int
	enableFallback bool
	noHead         bool
	noBulk         bool
}

// Optimize applies the tree-pattern detection rules of Fig. 3 to a
// fixpoint, growing maximal TupleTreePattern operators while preserving
// intermediate operators that carry non-pattern semantics.
func Optimize(plan algebra.Expr, opts Options) algebra.Expr {
	o := &optimizer{
		root:       plan,
		singletons: opts.SingletonVars,
		letNames:   map[string]bool{},
		usedFields: map[string]bool{},
		noHead:     opts.DisablePositionalFirst,
		noBulk:     opts.DisableBulkConversion,
	}
	collectNames(plan, o.letNames, o.usedFields)
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 10000
	}
	// Phase 1: bulk conversions and merges; phase 2: add the per-tuple
	// fallback for steps the bulk rules could not reach (the Q5 maps).
	step := 0
	for _, fallback := range []bool{false, true} {
		o.enableFallback = fallback
		for i := 0; i < maxSteps; i++ {
			next, rn, changed := o.rewriteFirst(plan, false)
			if !changed {
				break
			}
			if rn != nil && rn.from != rn.to {
				next = renameField(next, rn.from, rn.to)
			}
			plan = next
			o.root = plan
			step++
			if opts.Trace != nil {
				opts.Trace(step, plan)
			}
		}
	}
	return plan
}

func collectNames(e algebra.Expr, lets, fields map[string]bool) {
	switch x := e.(type) {
	case *algebra.Field:
		fields[x.Name] = true
	case *algebra.MapFromItem:
		fields[x.Bind] = true
	case *algebra.MapIndex:
		fields[x.Field] = true
	case *algebra.LetBind:
		lets[x.Name] = true
		fields[x.Name] = true
	case *algebra.TupleTreePattern:
		fields[x.Pattern.Input] = true
		for _, f := range x.Pattern.OutputFields() {
			fields[f] = true
		}
	}
	for _, c := range algebra.Children(e) {
		collectNames(c, lets, fields)
	}
}

func (o *optimizer) fresh() string {
	for {
		o.counter++
		name := fmt.Sprintf("out%d", o.counter)
		if !o.usedFields[name] {
			o.usedFields[name] = true
			return name
		}
	}
}

// rewriteFirst finds the first redex in a pre-order traversal, applies one
// rule, and returns the rebuilt plan. Tolerance (set-safety under an
// enclosing fs:ddo or effective-boolean-value consumer) is threaded down
// the traversal; positional operators and count reset it.
func (o *optimizer) rewriteFirst(e algebra.Expr, tolerant bool) (algebra.Expr, *rename, bool) {
	if out, rn, ok := o.applyRule(e, tolerant); ok {
		return out, rn, true
	}
	rebuild := func(child algebra.Expr, childTol bool, set func(algebra.Expr) algebra.Expr) (algebra.Expr, *rename, bool) {
		nc, rn, ok := o.rewriteFirst(child, childTol)
		if !ok {
			return nil, nil, false
		}
		return set(nc), rn, true
	}
	switch x := e.(type) {
	case *algebra.TreeJoin:
		return rebuild(x.Input, tolerant, func(c algebra.Expr) algebra.Expr {
			return &algebra.TreeJoin{Axis: x.Axis, Test: x.Test, Input: c}
		})
	case *algebra.Call:
		childTol := false
		switch x.Name {
		case "ddo", "boolean", "not", "empty", "exists":
			childTol = true
		}
		for i := range x.Args {
			if nc, rn, ok := o.rewriteFirst(x.Args[i], childTol); ok {
				args := append([]algebra.Expr{}, x.Args...)
				args[i] = nc
				return &algebra.Call{Name: x.Name, Args: args}, rn, true
			}
		}
	case *algebra.Compare:
		if nc, rn, ok := o.rewriteFirst(x.L, true); ok {
			return &algebra.Compare{Op: x.Op, L: nc, R: x.R}, rn, true
		}
		if nc, rn, ok := o.rewriteFirst(x.R, true); ok {
			return &algebra.Compare{Op: x.Op, L: x.L, R: nc}, rn, true
		}
	case *algebra.Sequence:
		for i := range x.Items {
			if nc, rn, ok := o.rewriteFirst(x.Items[i], tolerant); ok {
				items := append([]algebra.Expr{}, x.Items...)
				items[i] = nc
				return &algebra.Sequence{Items: items}, rn, true
			}
		}
	case *algebra.Arith:
		// Arithmetic needs exact singleton operands: not set-tolerant.
		if nc, rn, ok := o.rewriteFirst(x.L, false); ok {
			return &algebra.Arith{Op: x.Op, L: nc, R: x.R}, rn, true
		}
		if nc, rn, ok := o.rewriteFirst(x.R, false); ok {
			return &algebra.Arith{Op: x.Op, L: x.L, R: nc}, rn, true
		}
	case *algebra.And:
		if nc, rn, ok := o.rewriteFirst(x.L, true); ok {
			return &algebra.And{L: nc, R: x.R}, rn, true
		}
		if nc, rn, ok := o.rewriteFirst(x.R, true); ok {
			return &algebra.And{L: x.L, R: nc}, rn, true
		}
	case *algebra.Or:
		if nc, rn, ok := o.rewriteFirst(x.L, true); ok {
			return &algebra.Or{L: nc, R: x.R}, rn, true
		}
		if nc, rn, ok := o.rewriteFirst(x.R, true); ok {
			return &algebra.Or{L: x.L, R: nc}, rn, true
		}
	case *algebra.If:
		if nc, rn, ok := o.rewriteFirst(x.Cond, true); ok {
			return &algebra.If{Cond: nc, Then: x.Then, Else: x.Else}, rn, true
		}
		if nc, rn, ok := o.rewriteFirst(x.Then, tolerant); ok {
			return &algebra.If{Cond: x.Cond, Then: nc, Else: x.Else}, rn, true
		}
		if nc, rn, ok := o.rewriteFirst(x.Else, tolerant); ok {
			return &algebra.If{Cond: x.Cond, Then: x.Then, Else: nc}, rn, true
		}
	case *algebra.LetBind:
		if nc, rn, ok := o.rewriteFirst(x.Value, false); ok {
			return &algebra.LetBind{Name: x.Name, Value: nc, Body: x.Body}, rn, true
		}
		if nc, rn, ok := o.rewriteFirst(x.Body, tolerant); ok {
			return &algebra.LetBind{Name: x.Name, Value: x.Value, Body: nc}, rn, true
		}
	case *algebra.TypeSwitch:
		if nc, rn, ok := o.rewriteFirst(x.Input, false); ok {
			out := *x
			out.Input = nc
			return &out, rn, true
		}
		for i := range x.Cases {
			if nc, rn, ok := o.rewriteFirst(x.Cases[i].Body, tolerant); ok {
				out := *x
				out.Cases = append([]algebra.TSCase{}, x.Cases...)
				out.Cases[i].Body = nc
				return &out, rn, true
			}
		}
		if nc, rn, ok := o.rewriteFirst(x.Default, tolerant); ok {
			out := *x
			out.Default = nc
			return &out, rn, true
		}
	case *algebra.MapFromItem:
		return rebuild(x.Input, tolerant, func(c algebra.Expr) algebra.Expr {
			return &algebra.MapFromItem{Bind: x.Bind, Input: c}
		})
	case *algebra.MapToItem:
		if nc, rn, ok := o.rewriteFirst(x.Dep, tolerant); ok {
			return &algebra.MapToItem{Dep: nc, Input: x.Input}, rn, true
		}
		return rebuild(x.Input, tolerant, func(c algebra.Expr) algebra.Expr {
			return &algebra.MapToItem{Dep: x.Dep, Input: c}
		})
	case *algebra.Select:
		if nc, rn, ok := o.rewriteFirst(x.Pred, true); ok {
			return &algebra.Select{Pred: nc, Input: x.Input}, rn, true
		}
		return rebuild(x.Input, tolerant, func(c algebra.Expr) algebra.Expr {
			return &algebra.Select{Pred: x.Pred, Input: c}
		})
	case *algebra.MapIndex:
		return rebuild(x.Input, false, func(c algebra.Expr) algebra.Expr {
			return &algebra.MapIndex{Field: x.Field, Input: c}
		})
	case *algebra.Head:
		return rebuild(x.Input, false, func(c algebra.Expr) algebra.Expr {
			return &algebra.Head{Input: c}
		})
	case *algebra.TupleTreePattern:
		return rebuild(x.Input, tolerant, func(c algebra.Expr) algebra.Expr {
			return &algebra.TupleTreePattern{Pattern: x.Pattern, Input: c}
		})
	}
	return nil, nil, false
}

// applyRule adapts the rule set to the (expr, rename, fired) interface.
func (o *optimizer) applyRule(e algebra.Expr, tolerant bool) (algebra.Expr, *rename, bool) {
	return o.tryRules(e, tolerant)
}

// renameField substitutes a field name throughout a plan (Field references
// and pattern anchors).
func renameField(e algebra.Expr, from, to string) algebra.Expr {
	switch x := e.(type) {
	case *algebra.Field:
		if x.Name == from {
			return &algebra.Field{Name: to}
		}
		return x
	case *algebra.In, *algebra.VarRef, *algebra.Const, *algebra.EmptySeq:
		return e
	case *algebra.TreeJoin:
		return &algebra.TreeJoin{Axis: x.Axis, Test: x.Test, Input: renameField(x.Input, from, to)}
	case *algebra.Call:
		args := make([]algebra.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = renameField(a, from, to)
		}
		return &algebra.Call{Name: x.Name, Args: args}
	case *algebra.Compare:
		return &algebra.Compare{Op: x.Op, L: renameField(x.L, from, to), R: renameField(x.R, from, to)}
	case *algebra.Sequence:
		out := &algebra.Sequence{Items: make([]algebra.Expr, len(x.Items))}
		for i, it := range x.Items {
			out.Items[i] = renameField(it, from, to)
		}
		return out
	case *algebra.Arith:
		return &algebra.Arith{Op: x.Op, L: renameField(x.L, from, to), R: renameField(x.R, from, to)}
	case *algebra.And:
		return &algebra.And{L: renameField(x.L, from, to), R: renameField(x.R, from, to)}
	case *algebra.Or:
		return &algebra.Or{L: renameField(x.L, from, to), R: renameField(x.R, from, to)}
	case *algebra.If:
		return &algebra.If{Cond: renameField(x.Cond, from, to), Then: renameField(x.Then, from, to), Else: renameField(x.Else, from, to)}
	case *algebra.LetBind:
		return &algebra.LetBind{Name: x.Name, Value: renameField(x.Value, from, to), Body: renameField(x.Body, from, to)}
	case *algebra.TypeSwitch:
		out := &algebra.TypeSwitch{Input: renameField(x.Input, from, to), DefVar: x.DefVar}
		for _, c := range x.Cases {
			out.Cases = append(out.Cases, algebra.TSCase{Type: c.Type, Var: c.Var, Body: renameField(c.Body, from, to)})
		}
		out.Default = renameField(x.Default, from, to)
		return out
	case *algebra.MapFromItem:
		return &algebra.MapFromItem{Bind: x.Bind, Input: renameField(x.Input, from, to)}
	case *algebra.MapToItem:
		return &algebra.MapToItem{Dep: renameField(x.Dep, from, to), Input: renameField(x.Input, from, to)}
	case *algebra.Select:
		return &algebra.Select{Pred: renameField(x.Pred, from, to), Input: renameField(x.Input, from, to)}
	case *algebra.MapIndex:
		return &algebra.MapIndex{Field: x.Field, Input: renameField(x.Input, from, to)}
	case *algebra.Head:
		return &algebra.Head{Input: renameField(x.Input, from, to)}
	case *algebra.TupleTreePattern:
		p := x.Pattern.Clone()
		if p.Input == from {
			p.Input = to
		}
		return &algebra.TupleTreePattern{Pattern: p, Input: renameField(x.Input, from, to)}
	}
	return e
}
