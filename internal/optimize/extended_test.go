package optimize

import (
	"strings"
	"testing"

	"xqtp/internal/algebra"
)

// The extended fragment still feeds the pattern detector: quantifiers,
// union branches, conditionals and aggregations all contain maximal
// TupleTreePatterns.
func TestExtendedFragmentPlans(t *testing.T) {
	cases := []struct {
		query    string
		patterns int
		contains string
	}{
		{
			`some $x in $d//person satisfies $x/emailaddress`,
			1,
			// The satisfies clause merges into the pattern as a predicate
			// branch; the whole quantifier is an emptiness test over it.
			"fn:exists(MapToItem{IN#out1}(TupleTreePattern[IN#dot1/descendant::person{out1}[child::emailaddress]]",
		},
		{
			`every $x in $d//person satisfies $x/name`,
			1,
			// Negated conditions stay in a Select (not a pattern shape).
			"fn:empty(",
		},
		{
			`$d//a | $d//b`,
			2,
			// Union keeps its surrounding ddo over the concatenation.
			"fs:ddo(Seq(",
		},
		{
			`if ($d//a) then $d//b else ()`,
			2,
			"If{",
		},
		{
			`count($d//person[emailaddress])`,
			1,
			// Rule (f) drops the ddo: the operator's output is already in
			// distinct document order, so count sees the right cardinality.
			"fn:count(MapToItem",
		},
		{
			`sum(for $x in $d//person return count($x/emailaddress))`,
			1,
			"fn:sum(",
		},
	}
	for _, tc := range cases {
		p := planFor(t, tc.query)
		s := algebra.String(p)
		if got := algebra.CountOperators(p)["TupleTreePattern"]; got != tc.patterns {
			t.Errorf("%s: %d patterns, want %d\n  %s", tc.query, got, tc.patterns, s)
		}
		if !strings.Contains(s, tc.contains) {
			t.Errorf("%s: plan missing %q:\n  %s", tc.query, tc.contains, s)
		}
	}
}

// Arithmetic in predicates stays navigational inside the Select (like the
// paper's Q2 comparison) but the surrounding steps still merge.
func TestArithmeticPredicatePlan(t *testing.T) {
	p := planFor(t, `$d//person[count(name) + count(emailaddress) = 2]/name`)
	s := algebra.String(p)
	counts := algebra.CountOperators(p)
	if counts["TupleTreePattern"] != 2 {
		t.Errorf("want 2 patterns, got %d: %s", counts["TupleTreePattern"], s)
	}
	if counts["Select"] != 1 || counts["Arith"] != 1 {
		t.Errorf("predicate shape wrong: %v\n%s", counts, s)
	}
}
