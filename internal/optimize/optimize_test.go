package optimize

import (
	"strings"
	"testing"

	"xqtp/internal/algebra"
	"xqtp/internal/compile"
	"xqtp/internal/core"
	"xqtp/internal/parser"
	"xqtp/internal/rewrite"
)

var singles = map[string]bool{"d": true, "input": true, "dot": true}

func planFor(t *testing.T, q string) algebra.Expr {
	t.Helper()
	e, err := parser.Parse(q)
	if err != nil {
		t.Fatalf("parse %s: %v", q, err)
	}
	c, err := core.Normalize(e, "dot")
	if err != nil {
		t.Fatalf("normalize %s: %v", q, err)
	}
	c = rewrite.Rewrite(c, rewrite.Options{SingletonVars: singles})
	p, err := compile.Compile(c)
	if err != nil {
		t.Fatalf("compile %s: %v", q, err)
	}
	return Optimize(p, Options{SingletonVars: singles})
}

func unoptimizedFor(t *testing.T, q string) algebra.Expr {
	t.Helper()
	e, err := parser.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.Normalize(e, "dot")
	if err != nil {
		t.Fatal(err)
	}
	c = rewrite.Rewrite(c, rewrite.Options{SingletonVars: singles})
	p, err := compile.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// Q1a/Q1b/Q1c must optimize to the paper's P5: a single TupleTreePattern
// with the complete pattern, under one MapToItem, over one MapFromItem.
func TestQ1OptimizesToP5(t *testing.T) {
	plans := []string{
		`$d//person[emailaddress]/name`,
		`(for $x in $d//person[emailaddress] return $x)/name`,
		`let $x := for $y in $d//person where $y/emailaddress return $y return $x/name`,
	}
	var first string
	for i, q := range plans {
		p := planFor(t, q)
		s := algebra.String(p)
		if i == 0 {
			first = s
			// P5 shape.
			mti, ok := p.(*algebra.MapToItem)
			if !ok {
				t.Fatalf("top is %T: %s", p, s)
			}
			ttp, ok := mti.Input.(*algebra.TupleTreePattern)
			if !ok {
				t.Fatalf("below MapToItem: %T: %s", mti.Input, s)
			}
			ps := ttp.Pattern.String()
			want := "/descendant::person[child::emailaddress]/child::name"
			if !strings.Contains(ps, want) {
				t.Errorf("pattern = %s, want contains %s", ps, want)
			}
			if _, ok := ttp.Input.(*algebra.MapFromItem); !ok {
				t.Errorf("pattern input is %T, want MapFromItem: %s", ttp.Input, s)
			}
			counts := algebra.CountOperators(p)
			if counts["TupleTreePattern"] != 1 {
				t.Errorf("want exactly 1 TupleTreePattern, got %d: %s", counts["TupleTreePattern"], s)
			}
			if counts["TreeJoin"] != 0 || counts["fn:ddo"] != 0 || counts["Select"] != 0 {
				t.Errorf("residual operators in P5: %v: %s", counts, s)
			}
		} else if s != first {
			t.Errorf("plan %d diverges:\n  %s\n  %s", i, first, s)
		}
	}
}

// Q2 keeps its value-comparison Select between two TupleTreePatterns (the
// paper's Q2 plan).
func TestQ2PlanShape(t *testing.T) {
	p := planFor(t, `$d//person[name = "John"]/emailaddress`)
	s := algebra.String(p)
	counts := algebra.CountOperators(p)
	if counts["TupleTreePattern"] != 2 {
		t.Errorf("want 2 TupleTreePatterns, got %d: %s", counts["TupleTreePattern"], s)
	}
	if counts["Select"] != 1 {
		t.Errorf("want 1 residual Select, got %d: %s", counts["Select"], s)
	}
	// The comparison's TreeJoin stays navigational inside the Select.
	if counts["TreeJoin"] != 1 {
		t.Errorf("want 1 TreeJoin in the comparison, got %d: %s", counts["TreeJoin"], s)
	}
	if counts["fn:ddo"] != 0 {
		t.Errorf("ddo not eliminated: %s", s)
	}
	mti, ok := p.(*algebra.MapToItem)
	if !ok {
		t.Fatalf("top: %s", s)
	}
	ttp, ok := mti.Input.(*algebra.TupleTreePattern)
	if !ok || !strings.Contains(ttp.Pattern.String(), "child::emailaddress") {
		t.Fatalf("outer pattern wrong: %s", s)
	}
	if _, ok := ttp.Input.(*algebra.Select); !ok {
		t.Errorf("Select not preserved between patterns: %s", s)
	}
}

// Q5 becomes two tree patterns composed through a map: the outer pattern is
// evaluated per tuple (input IN), not bulk.
func TestQ5PlanShape(t *testing.T) {
	p := planFor(t, `for $x in $d//person[emailaddress] return $x/name`)
	s := algebra.String(p)
	counts := algebra.CountOperators(p)
	if counts["TupleTreePattern"] != 2 {
		t.Errorf("want 2 TupleTreePatterns, got %d: %s", counts["TupleTreePattern"], s)
	}
	// One of them must take IN (per-tuple evaluation inside the map).
	if counts["IN"] != 1 {
		t.Errorf("want 1 per-tuple pattern input, got %d: %s", counts["IN"], s)
	}
	q1a := algebra.String(planFor(t, `$d//person[emailaddress]/name`))
	if s == q1a {
		t.Error("Q5 plan must differ from Q1a plan")
	}
}

// All syntactic variants of the §5.1 path expression produce the exact same
// plan with a single TupleTreePattern.
func TestVariantPlansIdentical(t *testing.T) {
	variants := []string{
		`$input/site/people/person[emailaddress]/profile/interest`,
		`for $x1 in $input/site, $x2 in $x1/people, $x3 in $x2/person[emailaddress] return $x3/profile/interest`,
		`for $x1 in $input/site return for $x2 in $x1/people return $x2/person[emailaddress]/profile/interest`,
		`for $x3 in $input/site/people/person where $x3/emailaddress return $x3/profile/interest`,
		`for $p in $input/site/people/person[emailaddress] return $p/profile/interest`,
		`for $x in $input/site/people/person[emailaddress], $i in $x/profile return $i/interest`,
	}
	var first string
	for i, v := range variants {
		p := planFor(t, v)
		s := algebra.String(p)
		if i == 0 {
			first = s
			counts := algebra.CountOperators(p)
			if counts["TupleTreePattern"] != 1 {
				t.Fatalf("want a single TupleTreePattern, got %d: %s", counts["TupleTreePattern"], s)
			}
			if counts["TreeJoin"] != 0 || counts["Select"] != 0 || counts["fn:ddo"] != 0 {
				t.Errorf("residual operators: %v: %s", counts, s)
			}
			want := "child::site/child::people/child::person[child::emailaddress]/child::profile/child::interest"
			if !strings.Contains(s, want) {
				t.Errorf("pattern = %s, want contains %s", s, want)
			}
		} else if s != first {
			t.Errorf("variant %d produced a different plan:\n  %s\n  %s\n  (%s)", i, first, s, v)
		}
	}
}

// Nested predicate branches (QE1) merge fully into one twig.
func TestQE1Twig(t *testing.T) {
	p := planFor(t, `$input/desc::t01[child::t02[child::t03[child::t04]]]`)
	s := algebra.String(p)
	counts := algebra.CountOperators(p)
	if counts["TupleTreePattern"] != 1 {
		t.Fatalf("want 1 TupleTreePattern, got %d: %s", counts["TupleTreePattern"], s)
	}
	want := "descendant::t01"
	if !strings.Contains(s, want) || !strings.Contains(s, "[child::t02[child::t03[child::t04]]]") {
		t.Errorf("twig not fully merged: %s", s)
	}
	if counts["Select"] != 0 || counts["TreeJoin"] != 0 {
		t.Errorf("residual operators: %v: %s", counts, s)
	}
}

// QE3: two predicate branches on a shared spine step.
func TestQE3Twig(t *testing.T) {
	p := planFor(t, `$input/desc::t01[child::t02[child::t03]/child::t04[child::t03]]`)
	s := algebra.String(p)
	if algebra.CountOperators(p)["TupleTreePattern"] != 1 {
		t.Fatalf("want 1 TupleTreePattern: %s", s)
	}
	if !strings.Contains(s, "[child::t02[child::t03]/child::t04[child::t03]]") {
		t.Errorf("nested path predicate not merged: %s", s)
	}
}

// The §5.3 positional chain keeps one single-step pattern per step,
// separated by Head operators (positional-first rewrite).
func TestPositionalChainPlan(t *testing.T) {
	p := planFor(t, `/t1[1]/t1[1]/t1[1]`)
	s := algebra.String(p)
	counts := algebra.CountOperators(p)
	if counts["Head"] != 3 {
		t.Errorf("want 3 Head operators, got %d: %s", counts["Head"], s)
	}
	if counts["TupleTreePattern"] != 3 {
		t.Errorf("want 3 single-step patterns, got %d: %s", counts["TupleTreePattern"], s)
	}
	if counts["MapIndex"] != 0 || counts["Select"] != 0 {
		t.Errorf("positional-first rewrite missed: %v: %s", counts, s)
	}
}

// Q3 ($d//person[1]/name): descendant step makes the context potentially
// nested, so the position must NOT collapse via Head-merging into the
// pattern; the plan keeps the positional region separate.
func TestQ3KeepsPositional(t *testing.T) {
	p := planFor(t, `$d//person[1]/name`)
	s := algebra.String(p)
	counts := algebra.CountOperators(p)
	if counts["Head"]+counts["MapIndex"] == 0 {
		t.Errorf("positional operator lost: %s", s)
	}
	if counts["TupleTreePattern"] < 2 {
		t.Errorf("expected patterns on both sides of the positional filter: %s", s)
	}
}

// The unoptimized plan for Q1-tp is the paper's P1: maps + TreeJoins + ddo,
// no patterns.
func TestUnoptimizedIsP1(t *testing.T) {
	p := unoptimizedFor(t, `$d//person[emailaddress]/name`)
	counts := algebra.CountOperators(p)
	if counts["TupleTreePattern"] != 0 {
		t.Errorf("unoptimized plan already has patterns: %s", algebra.String(p))
	}
	if counts["TreeJoin"] != 3 {
		t.Errorf("want 3 TreeJoins (person, emailaddress, name), got %d: %s", counts["TreeJoin"], algebra.String(p))
	}
	if counts["fn:ddo"] != 1 || counts["Select"] != 1 {
		t.Errorf("P1 shape wrong: %v", counts)
	}
}

// Optimization is idempotent.
func TestOptimizeIdempotent(t *testing.T) {
	for _, q := range []string{
		`$d//person[emailaddress]/name`,
		`$d//person[name = "John"]/emailaddress`,
		`for $x in $d//person[emailaddress] return $x/name`,
		`/t1[1]/t1[1]`,
	} {
		p := planFor(t, q)
		p2 := Optimize(p, Options{SingletonVars: singles})
		if !algebra.Equal(p, p2) {
			t.Errorf("not idempotent for %s:\n  %s\n  %s", q, algebra.String(p), algebra.String(p2))
		}
	}
}
