// Package optimize implements the algebraic rewritings of paper §4 (Fig. 3)
// that detect tree patterns in query plans: replacing TreeJoins with
// TupleTreePattern operators (rules a, b), eliminating item-tuple
// conversions (rule c), merging adjacent patterns (rules d, e), removing
// redundant fs:ddo calls over pattern results (rule f), plus the clean-up
// rules that make detection robust (map collapsing, positional-first).
//
// The rules are directed so that patterns grow as large as possible while
// operators with non-pattern semantics (Select with value comparisons,
// positional MapIndex/Head, the maps of Q5) are preserved.
package optimize

import (
	"xqtp/internal/algebra"
	"xqtp/internal/xdm"
)

// fieldUO reports whether the values of tuple field f across the output
// stream of op are known to be in document order, duplicate-free and
// unnested (no value an ancestor of another). Under this condition the bulk
// conversion of a navigational step over the whole stream (rule b) is
// order-safe even without a protecting fs:ddo.
func (o *optimizer) fieldUO(op algebra.Expr, f string) bool {
	switch x := op.(type) {
	case *algebra.MapFromItem:
		if x.Bind == f {
			return o.itemsUO(x.Input)
		}
		return false
	case *algebra.TupleTreePattern:
		out, ok := x.Pattern.SingleOutput()
		if !ok {
			return false
		}
		if out != f {
			// f flows through from the input.
			return o.fieldUO(x.Input, f)
		}
		// The bindings of a child/attribute-only spine over an unnested
		// ordered context are unnested and ordered; a descendant step can
		// produce nested bindings.
		for s := x.Pattern.Root; s != nil; s = s.Next {
			switch s.Axis {
			case xdm.AxisChild, xdm.AxisAttribute, xdm.AxisSelf:
			default:
				return false
			}
		}
		return o.fieldUO(x.Input, x.Pattern.Input)
	case *algebra.Select:
		return o.fieldUO(x.Input, f)
	case *algebra.MapIndex:
		if x.Field == f {
			return false
		}
		return o.fieldUO(x.Input, f)
	case *algebra.Head:
		// At most one tuple: a single-item field value is trivially
		// ordered, duplicate-free and unnested.
		return true
	}
	return false
}

// itemsUO reports whether an item-sequence expression is known to produce
// items in document order, duplicate-free and unnested.
func (o *optimizer) itemsUO(e algebra.Expr) bool {
	switch x := e.(type) {
	case *algebra.VarRef:
		return o.singletons[x.Name]
	case *algebra.Const, *algebra.EmptySeq:
		return true
	case *algebra.Call:
		if x.Name == "root" && len(x.Args) == 1 {
			return o.singletonItems(x.Args[0])
		}
		return false
	case *algebra.In:
		// The per-item context is a single item.
		return true
	case *algebra.MapToItem:
		if f, ok := x.Dep.(*algebra.Field); ok {
			return o.fieldUO(x.Input, f.Name)
		}
		return false
	}
	return false
}

// singletonItems reports whether e yields at most one item.
func (o *optimizer) singletonItems(e algebra.Expr) bool {
	switch x := e.(type) {
	case *algebra.VarRef:
		return o.singletons[x.Name]
	case *algebra.In, *algebra.Const:
		return true
	case *algebra.Call:
		if x.Name == "root" && len(x.Args) == 1 {
			return o.singletonItems(x.Args[0])
		}
	}
	return false
}
