package xdm

// TreeBuilder assembles a Tree in one pass, in document order, without the
// separate Finalize re-walk: every region-encoding field and every column of
// the structure-of-arrays mirror is emitted the moment it is known (pre,
// level, kind, sym, parent at element open; post and size at element close).
// Nodes come out of slab arenas and child/attribute pointer lists out of a
// shared pointer arena, so building an n-node tree costs O(n / slab) heap
// allocations instead of O(n).
//
// The caller drives it like a SAX handler and must respect document order:
// OpenElement, then that element's Attr calls, then its children (nested
// OpenElement/CloseElement pairs and Text calls), then CloseElement. The
// builder itself performs no well-formedness checking beyond what Depth
// exposes — the xmlstore scanner is responsible for rejecting malformed
// input before it reaches the builder.
type TreeBuilder struct {
	t    *Tree
	post int32

	// Node slab arena: nodes are handed out of chunk[used:]; a fresh chunk
	// replaces it when exhausted. Finished nodes are reachable through
	// t.Nodes, so spent chunks need no bookkeeping. spill is the size of the
	// last overflow chunk (0 while the size-hint chunk lasts).
	chunk []Node
	used  int
	spill int

	// Pointer arena for Children/Attrs slices, chunked the same way. Slices
	// are taken with a full slice expression so later appends to the chunk
	// cannot grow into them.
	ptrChunk []*Node

	// scratch collects the attribute and child pointers of every open
	// element; each frame owns scratch[frame.scratchStart:] with its
	// attributes (nattrs of them) before its children.
	scratch []*Node
	frames  []builderFrame
}

type builderFrame struct {
	node         *Node
	pre          int32
	scratchStart int32
	nattrs       int32
}

const (
	minNodeChunk = 64
	maxNodeChunk = 8192
	minPtrChunk  = 64
	maxPtrChunk  = 8192
)

// NewTreeBuilder returns a builder for a new tree. nodeHint is the expected
// total node count (attributes and texts included); pass 0 when unknown.
// The returned builder holds the open document node as its base frame.
func NewTreeBuilder(nodeHint int) *TreeBuilder {
	if nodeHint < minNodeChunk {
		nodeHint = minNodeChunk
	}
	t := &Tree{ID: int(nextTreeID.Add(1)), Syms: newSymbols()}
	t.Nodes = make([]*Node, 0, nodeHint)
	t.Cols = &Cols{
		Post:   make([]int32, 0, nodeHint),
		Size:   make([]int32, 0, nodeHint),
		Level:  make([]int32, 0, nodeHint),
		Parent: make([]int32, 0, nodeHint),
		Kind:   make([]uint8, 0, nodeHint),
		Sym:    make([]int32, 0, nodeHint),
	}
	b := &TreeBuilder{
		t:       t,
		chunk:   make([]Node, min(nodeHint, maxNodeChunk)),
		scratch: make([]*Node, 0, 64),
		frames:  make([]builderFrame, 0, 32),
	}
	doc := b.newNode()
	doc.Kind = DocumentNode
	doc.Sym = NoSym
	doc.Doc = t
	t.Root = doc
	t.Nodes = append(t.Nodes, doc)
	b.appendCols(0, -1, DocumentNode, NoSym)
	b.frames = append(b.frames, builderFrame{node: doc, pre: 0})
	return b
}

func (b *TreeBuilder) newNode() *Node {
	if b.used == len(b.chunk) {
		// The size-hint chunk ran out. Spill chunks start at a quarter of the
		// hint — a hint that was merely a little low costs a little — and
		// double from there, so a badly low hint still converges in O(log n)
		// chunks. The previous policy jumped straight to a maxNodeChunk slab
		// (~1 MB), which for corpora of small documents was a ~280x ingest
		// write amplification and with it a GC-bound throughput cliff.
		if b.spill == 0 {
			b.spill = max(minNodeChunk, len(b.chunk)/4)
		} else {
			b.spill = min(2*b.spill, maxNodeChunk)
		}
		b.chunk = make([]Node, b.spill)
		b.used = 0
	}
	n := &b.chunk[b.used]
	b.used++
	return n
}

// allocPtrs copies src into the pointer arena and returns the stable slice.
func (b *TreeBuilder) allocPtrs(src []*Node) []*Node {
	if len(src) == 0 {
		return nil
	}
	if len(b.ptrChunk)+len(src) > cap(b.ptrChunk) {
		// Same geometric policy as the node chunks: small trees stay in
		// small pointer chunks instead of paying a 64 KB arena up front.
		n := min(max(2*cap(b.ptrChunk), minPtrChunk), maxPtrChunk)
		b.ptrChunk = make([]*Node, 0, max(n, len(src)))
	}
	start := len(b.ptrChunk)
	b.ptrChunk = append(b.ptrChunk, src...)
	return b.ptrChunk[start:len(b.ptrChunk):len(b.ptrChunk)]
}

// appendCols emits the open-time column values for the node about to get
// preorder rank len(Nodes)-1; Post and Size are patched at close time.
func (b *TreeBuilder) appendCols(level, parent int32, kind Kind, sym Sym) {
	c := b.t.Cols
	c.Post = append(c.Post, -1)
	c.Size = append(c.Size, 0)
	c.Level = append(c.Level, level)
	c.Parent = append(c.Parent, parent)
	c.Kind = append(c.Kind, uint8(kind))
	c.Sym = append(c.Sym, int32(sym))
}

// OpenElement starts an element named name (still in the scanner's buffer;
// interned here) as the next child of the current open element. It returns
// the element's preorder rank and interned symbol.
func (b *TreeBuilder) OpenElement(name []byte) (int32, Sym) {
	sym := b.t.Syms.internBytes(name)
	parent := &b.frames[len(b.frames)-1]
	pre := int32(len(b.t.Nodes))
	level := int32(len(b.frames)) // document frame is level 0
	n := b.newNode()
	n.Kind = ElementNode
	n.Name = b.t.Syms.names[sym]
	n.Sym = sym
	n.Parent = parent.node
	n.Pre = int(pre)
	n.Level = int(level)
	n.Doc = b.t
	b.t.Nodes = append(b.t.Nodes, n)
	b.appendCols(level, parent.pre, ElementNode, sym)
	b.scratch = append(b.scratch, n)
	b.frames = append(b.frames, builderFrame{node: n, pre: pre, scratchStart: int32(len(b.scratch))})
	return pre, sym
}

// Attr adds an attribute to the current open element. Attributes must be
// added before any of the element's children, matching their position in
// the preorder numbering (directly after the owner, before its children).
func (b *TreeBuilder) Attr(name []byte, value string) (int32, Sym) {
	sym := b.t.Syms.internBytes(name)
	f := &b.frames[len(b.frames)-1]
	pre := int32(len(b.t.Nodes))
	level := int32(len(b.frames))
	n := b.newNode()
	n.Kind = AttributeNode
	n.Name = b.t.Syms.names[sym]
	n.Text = value
	n.Sym = sym
	n.Parent = f.node
	n.Pre = int(pre)
	n.Level = int(level)
	n.Post = int(b.post)
	n.Doc = b.t
	b.post++
	b.t.Nodes = append(b.t.Nodes, n)
	b.appendCols(level, f.pre, AttributeNode, sym)
	b.t.Cols.Post[pre] = int32(n.Post)
	b.scratch = append(b.scratch, n)
	f.nattrs++
	return pre, sym
}

// Text adds a text node under the current open element and returns its
// preorder rank.
func (b *TreeBuilder) Text(text string) int32 {
	f := &b.frames[len(b.frames)-1]
	pre := int32(len(b.t.Nodes))
	level := int32(len(b.frames))
	n := b.newNode()
	n.Kind = TextNode
	n.Text = text
	n.Sym = NoSym
	n.Parent = f.node
	n.Pre = int(pre)
	n.Level = int(level)
	n.Post = int(b.post)
	n.Doc = b.t
	b.post++
	b.t.Nodes = append(b.t.Nodes, n)
	b.appendCols(level, f.pre, TextNode, NoSym)
	b.t.Cols.Post[pre] = int32(n.Post)
	b.scratch = append(b.scratch, n)
	return pre
}

// closeFrame seals the top frame: assigns post and size, and moves the
// frame's scratch region into the arena-backed Attrs/Children slices.
func (b *TreeBuilder) closeFrame() {
	f := &b.frames[len(b.frames)-1]
	n := f.node
	n.Post = int(b.post)
	b.post++
	n.Size = len(b.t.Nodes) - 1 - n.Pre
	c := b.t.Cols
	c.Post[f.pre] = int32(n.Post)
	c.Size[f.pre] = int32(n.Size)
	region := b.scratch[f.scratchStart:]
	if f.nattrs > 0 {
		n.Attrs = b.allocPtrs(region[:f.nattrs])
	}
	if kids := region[f.nattrs:]; len(kids) > 0 {
		n.Children = b.allocPtrs(kids)
	}
	b.scratch = b.scratch[:f.scratchStart]
	b.frames = b.frames[:len(b.frames)-1]
}

// CloseElement ends the current open element.
func (b *TreeBuilder) CloseElement() { b.closeFrame() }

// Depth returns the number of open elements (the document node excluded).
func (b *TreeBuilder) Depth() int { return len(b.frames) - 1 }

// Name returns the interned string for a symbol of the tree under
// construction (used by the scanner for end-tag matching and errors).
func (b *TreeBuilder) Name(s Sym) string { return b.t.Syms.Name(s) }

// CurrentSym returns the symbol of the innermost open element, or NoSym at
// the document level.
func (b *TreeBuilder) CurrentSym() Sym {
	if len(b.frames) <= 1 {
		return NoSym
	}
	return b.frames[len(b.frames)-1].node.Sym
}

// NumNodes returns the number of nodes built so far.
func (b *TreeBuilder) NumNodes() int { return len(b.t.Nodes) }

// Finish closes the document node and returns the completed tree. All
// elements must have been closed (Depth() == 0); the tree must not be
// mutated afterwards. The builder must not be reused.
func (b *TreeBuilder) Finish() *Tree {
	b.closeFrame()
	return b.t
}
