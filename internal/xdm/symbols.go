package xdm

import "fmt"

// Sym is an interned element/attribute name: a small integer assigned per
// tree at Finalize time. Symbol IDs index the per-tag stream tables of the
// store directly, so the join loops never hash name strings — the same
// access-structure trick native XML engines use for their label paths.
type Sym int32

// NoSym marks nodes without a name (document and text nodes) and lookups of
// names absent from the tree.
const NoSym Sym = -1

// Symbols is a tree's symbol table: a bijection between the element and
// attribute names occurring in the document and the dense ID range
// [0, Len()). The table is immutable after Finalize, so concurrent readers
// need no synchronization.
type Symbols struct {
	byName map[string]Sym
	names  []string
}

func newSymbols() *Symbols {
	return &Symbols{byName: make(map[string]Sym)}
}

// NewSymbols builds a symbol table over an already-interned name list —
// the snapshot load path, where the dense ID assignment is part of the
// stored format. The slice is retained; duplicate names are rejected (they
// would break the name→ID bijection).
func NewSymbols(names []string) (*Symbols, error) {
	st := &Symbols{byName: make(map[string]Sym, len(names)), names: names}
	for i, n := range names {
		if _, dup := st.byName[n]; dup {
			return nil, fmt.Errorf("xdm: duplicate symbol name %q", n)
		}
		st.byName[n] = Sym(i)
	}
	return st, nil
}

// Names returns the interned names indexed by symbol ID. The slice is shared
// and must not be modified.
func (st *Symbols) Names() []string {
	if st == nil {
		return nil
	}
	return st.names
}

// intern returns the ID for name, assigning the next free ID on first use.
func (st *Symbols) intern(name string) Sym {
	if s, ok := st.byName[name]; ok {
		return s
	}
	s := Sym(len(st.names))
	st.byName[name] = s
	st.names = append(st.names, name)
	return s
}

// internBytes is intern for a name still sitting in a scanner's input
// buffer. The map lookup on string(name) does not allocate (the compiler
// recognizes the pattern); the name is copied to a string only on first
// occurrence, so a scan interns each distinct tag exactly once.
func (st *Symbols) internBytes(name []byte) Sym {
	if s, ok := st.byName[string(name)]; ok {
		return s
	}
	s := Sym(len(st.names))
	owned := string(name)
	st.byName[owned] = s
	st.names = append(st.names, owned)
	return s
}

// Lookup resolves a name to its symbol. Names that do not occur in the tree
// return (NoSym, false) — for a query name test this means the matching
// stream is empty, no fallback scan needed. A nil table (an unloaded shell
// tree) resolves nothing.
func (st *Symbols) Lookup(name string) (Sym, bool) {
	if st == nil {
		return NoSym, false
	}
	s, ok := st.byName[name]
	if !ok {
		return NoSym, false
	}
	return s, true
}

// Name returns the string for a symbol.
func (st *Symbols) Name(s Sym) string {
	if st == nil || s < 0 || int(s) >= len(st.names) {
		return ""
	}
	return st.names[s]
}

// Len returns the number of distinct interned names.
func (st *Symbols) Len() int {
	if st == nil {
		return 0
	}
	return len(st.names)
}
