package xdm

import (
	"testing"
)

func TestArithmeticBasics(t *testing.T) {
	cases := []struct {
		op   ArithOp
		l, r Item
		want Item
	}{
		{OpAdd, Integer(2), Integer(3), Integer(5)},
		{OpSub, Integer(2), Integer(5), Integer(-3)},
		{OpMul, Integer(4), Integer(3), Integer(12)},
		{OpAdd, Integer(2), Float(0.5), Float(2.5)},
		{OpDiv, Integer(7), Integer(2), Float(3.5)},
		{OpIDiv, Integer(7), Integer(2), Integer(3)},
		{OpMod, Integer(7), Integer(2), Integer(1)},
		{OpMod, Float(7.5), Integer(2), Float(1.5)},
		{OpAdd, String("2"), Integer(1), Float(3)},
	}
	for _, tc := range cases {
		got, err := Arithmetic(tc.op, Singleton(tc.l), Singleton(tc.r))
		if err != nil {
			t.Fatalf("%v %s %v: %v", tc.l, tc.op, tc.r, err)
		}
		if len(got) != 1 || got[0] != tc.want {
			t.Errorf("%v %s %v = %v, want %v", tc.l, tc.op, tc.r, got, tc.want)
		}
	}
}

func TestArithmeticEmptyAndErrors(t *testing.T) {
	// Empty operand propagates.
	if got, err := Arithmetic(OpAdd, nil, Singleton(Integer(1))); err != nil || len(got) != 0 {
		t.Errorf("() + 1 = %v, %v", got, err)
	}
	if got, err := Arithmetic(OpMul, Singleton(Integer(1)), nil); err != nil || len(got) != 0 {
		t.Errorf("1 * () = %v, %v", got, err)
	}
	// Multi-item operands are type errors.
	if _, err := Arithmetic(OpAdd, Sequence{Integer(1), Integer(2)}, Singleton(Integer(1))); err == nil {
		t.Error("2-item operand should fail")
	}
	// Non-numeric strings are cast errors.
	if _, err := Arithmetic(OpAdd, Singleton(String("x")), Singleton(Integer(1))); err == nil {
		t.Error("string cast should fail")
	}
	// Booleans cannot be operands.
	if _, err := Arithmetic(OpAdd, Singleton(Bool(true)), Singleton(Integer(1))); err == nil {
		t.Error("boolean operand should fail")
	}
	// Division by zero.
	if _, err := Arithmetic(OpDiv, Singleton(Integer(1)), Singleton(Integer(0))); err == nil {
		t.Error("integer div by zero should fail")
	}
	if _, err := Arithmetic(OpIDiv, Singleton(Integer(1)), Singleton(Integer(0))); err == nil {
		t.Error("idiv by zero should fail")
	}
	if _, err := Arithmetic(OpMod, Singleton(Integer(1)), Singleton(Integer(0))); err == nil {
		t.Error("mod by zero should fail")
	}
	// Float division by zero is IEEE infinity, not an error.
	got, err := Arithmetic(OpDiv, Singleton(Float(1)), Singleton(Integer(0)))
	if err != nil || len(got) != 1 {
		t.Errorf("1e0 div 0 = %v, %v", got, err)
	}
}

func TestArithmeticAtomizesNodes(t *testing.T) {
	n := NewElement("price")
	n.AppendChild(NewText("10"))
	Finalize(n)
	got, err := Arithmetic(OpMul, Singleton(n), Singleton(Integer(2)))
	if err != nil || len(got) != 1 || got[0] != Float(20) {
		t.Errorf("node * 2 = %v, %v", got, err)
	}
}
