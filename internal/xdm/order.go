package xdm

import (
	"fmt"
	"sort"
)

// CompareOrder compares two nodes in document order: negative if a precedes
// b, zero if identical, positive if a follows b. Nodes from different
// documents are ordered by document ID (a stable, implementation-defined
// order, as permitted by the XDM).
func CompareOrder(a, b *Node) int {
	if a.Doc != b.Doc {
		return a.Doc.ID - b.Doc.ID
	}
	return a.Pre - b.Pre
}

// SortDoc sorts nodes in place into document order.
func SortDoc(ns []*Node) {
	sort.Slice(ns, func(i, j int) bool { return CompareOrder(ns[i], ns[j]) < 0 })
}

// DedupSorted removes adjacent duplicate nodes from a document-ordered
// slice, in place, and returns the shortened slice.
func DedupSorted(ns []*Node) []*Node {
	if len(ns) < 2 {
		return ns
	}
	w := 1
	for i := 1; i < len(ns); i++ {
		if ns[i] != ns[w-1] {
			ns[w] = ns[i]
			w++
		}
	}
	return ns[:w]
}

// DDO implements fs:distinct-doc-order: it sorts a node sequence into
// document order and removes duplicates. It is an error to apply it to a
// sequence containing atomic values.
func DDO(s Sequence) (Sequence, error) {
	ns := make([]*Node, 0, len(s))
	for _, it := range s {
		n, ok := it.(*Node)
		if !ok {
			return nil, fmt.Errorf("xdm: fs:distinct-doc-order applied to atomic value %T", it)
		}
		ns = append(ns, n)
	}
	SortDoc(ns)
	ns = DedupSorted(ns)
	out := make(Sequence, len(ns))
	for i, n := range ns {
		out[i] = n
	}
	return out, nil
}

// IsDocOrdered reports whether a sequence consists solely of nodes in strict
// document order with no duplicates.
func IsDocOrdered(s Sequence) bool {
	var prev *Node
	for _, it := range s {
		n, ok := it.(*Node)
		if !ok {
			return false
		}
		if prev != nil && CompareOrder(prev, n) >= 0 {
			return false
		}
		prev = n
	}
	return true
}

// NodesOf extracts the node pointers from a sequence; it returns false if
// any item is not a node.
func NodesOf(s Sequence) ([]*Node, bool) {
	ns := make([]*Node, len(s))
	for i, it := range s {
		n, ok := it.(*Node)
		if !ok {
			return nil, false
		}
		ns[i] = n
	}
	return ns, true
}

// SequenceOf converts a node slice into a Sequence.
func SequenceOf(ns []*Node) Sequence {
	s := make(Sequence, len(ns))
	for i, n := range ns {
		s[i] = n
	}
	return s
}
