package xdm

import "fmt"

// TreeFromColumns accepts an already-complete column set as a tree — the
// core of the snapshot load path. No region encoding is recomputed;
// Post/Size/Level/Parent come straight from the columns, names resolve
// through syms, and texts supplies the string values of the text-bearing
// nodes (text and attribute nodes, in preorder). The cols, syms and texts
// arguments are retained by the returned tree.
//
// The columns are validated structurally here — parent ranks behind the
// child, kinds that can nest, symbol and region bounds — so a corrupted
// snapshot turns into an error at load time instead of an out-of-range
// panic inside a join kernel. The pointer data model (the Node structs with
// their Parent/Children/Attrs links, the inverse of what the TreeBuilder
// emits) is NOT built here: the returned tree is lazy, and materializes its
// nodes on the first forcing access (Tree.RootNode, Tree.Materialize).
// Opening a corpus snapshot therefore costs validation and slice headers
// only; members a query never touches never allocate a Node. The tree gets
// a fresh ID from the global counter; corpus loaders reassign IDs in member
// order afterwards (AssignTreeIDs), exactly as parallel ingest does.
func TreeFromColumns(cols *Cols, syms *Symbols, texts []string) (*Tree, error) {
	t := &Tree{
		ID:   int(nextTreeID.Add(1)),
		lazy: &lazyNodes{},
	}
	if err := t.FillColumns(cols, syms, texts); err != nil {
		return nil, err
	}
	return t, nil
}

// FillColumns validates the column set and installs it on t, which must be
// an unfilled shell or freshly allocated tree. This is the deferred-load
// half of TreeFromColumns: the snapshot loader creates shell trees at open
// time (NewShellTree) and fills them here when a member's first use forces
// its parse, preserving the tree's pointer identity for every cache keyed
// on it. The cols, syms and texts arguments are retained.
func (t *Tree) FillColumns(cols *Cols, syms *Symbols, texts []string) error {
	n := len(cols.Kind)
	if len(cols.Post) != n || len(cols.Size) != n || len(cols.Level) != n ||
		len(cols.Parent) != n || len(cols.Sym) != n {
		return fmt.Errorf("xdm: column lengths disagree")
	}
	if n < 2 {
		return fmt.Errorf("xdm: tree without a document root")
	}
	if Kind(cols.Kind[0]) != DocumentNode || cols.Parent[0] != -1 ||
		cols.Level[0] != 0 || Sym(cols.Sym[0]) != NoSym {
		return fmt.Errorf("xdm: rank 0 is not a document node")
	}
	if int(cols.Size[0]) != n-1 {
		return fmt.Errorf("xdm: document region does not span the tree")
	}
	nsyms := int32(syms.Len())

	// Validate every node against its parent, counting the fan-out so the
	// root-element and text-count invariants can be checked below. (The
	// counts are recomputed at materialization time; this pass is about
	// rejecting corrupted columns while errors can still be returned.)
	childCount := make([]int32, n)
	attrCount := make([]int32, n)
	nTexts := 0
	for i := 1; i < n; i++ {
		p := cols.Parent[i]
		if p < 0 || int(p) >= i {
			return fmt.Errorf("xdm: node %d has parent rank %d (not an earlier node)", i, p)
		}
		if cols.Level[i] != cols.Level[p]+1 {
			return fmt.Errorf("xdm: node %d level %d under parent level %d", i, cols.Level[i], cols.Level[p])
		}
		if cols.Size[i] < 0 || int(cols.Size[i]) > n-1-i {
			return fmt.Errorf("xdm: node %d region size %d out of range", i, cols.Size[i])
		}
		if int32(i)+cols.Size[i] > p+cols.Size[p] {
			return fmt.Errorf("xdm: node %d region escapes its parent's", i)
		}
		if cols.Post[i] < 0 || int(cols.Post[i]) >= n {
			return fmt.Errorf("xdm: node %d postorder rank %d out of range", i, cols.Post[i])
		}
		pk := Kind(cols.Kind[p])
		switch k := Kind(cols.Kind[i]); k {
		case ElementNode:
			if pk != ElementNode && pk != DocumentNode {
				return fmt.Errorf("xdm: element %d under %s parent", i, pk)
			}
			if s := cols.Sym[i]; s < 0 || s >= nsyms {
				return fmt.Errorf("xdm: node %d symbol %d out of range", i, s)
			}
			childCount[p]++
		case AttributeNode:
			if pk != ElementNode {
				return fmt.Errorf("xdm: attribute %d under %s parent", i, pk)
			}
			if s := cols.Sym[i]; s < 0 || s >= nsyms {
				return fmt.Errorf("xdm: node %d symbol %d out of range", i, s)
			}
			if cols.Size[i] != 0 {
				return fmt.Errorf("xdm: attribute %d with non-empty region", i)
			}
			attrCount[p]++
			nTexts++
		case TextNode:
			if pk != ElementNode && pk != DocumentNode {
				return fmt.Errorf("xdm: text %d under %s parent", i, pk)
			}
			if Sym(cols.Sym[i]) != NoSym {
				return fmt.Errorf("xdm: text node %d carries a symbol", i)
			}
			if cols.Size[i] != 0 {
				return fmt.Errorf("xdm: text node %d with non-empty region", i)
			}
			childCount[p]++
			nTexts++
		case DocumentNode:
			return fmt.Errorf("xdm: nested document node at rank %d", i)
		default:
			return fmt.Errorf("xdm: invalid node kind %d at rank %d", cols.Kind[i], i)
		}
	}
	if nTexts != len(texts) {
		return fmt.Errorf("xdm: %d text values for %d text-bearing nodes", len(texts), nTexts)
	}
	if childCount[0] != 1 || attrCount[0] != 0 {
		return fmt.Errorf("xdm: document node must hold exactly one root element")
	}
	if Kind(cols.Kind[1]) != ElementNode {
		return fmt.Errorf("xdm: root of the document is not an element")
	}

	t.Syms = syms
	t.Cols = cols
	if t.lazy == nil {
		t.lazy = &lazyNodes{}
	}
	t.lazy.texts = texts
	return nil
}

// materialize builds the pointer data model over the validated columns of a
// lazy tree: the nodes from one slab and the Children/Attrs lists from one
// pointer arena (the exact counts are known, so this is two allocations
// plus the headers). Each parent's arena region holds its attributes first,
// then its children; appends below fill the capacity-bounded subslices in
// preorder, which is attribute/child order. Called exactly once, under the
// lazy once gate (Tree.force).
func (t *Tree) materialize(texts []string) {
	cols := t.Cols
	syms := t.Syms
	n := len(cols.Kind)
	childCount := make([]int32, n)
	attrCount := make([]int32, n)
	for i := 1; i < n; i++ {
		if Kind(cols.Kind[i]) == AttributeNode {
			attrCount[cols.Parent[i]]++
		} else {
			childCount[cols.Parent[i]]++
		}
	}
	slab := make([]Node, n)
	nodes := make([]*Node, n)
	ptrs := make([]*Node, n-1) // every node except the document is someone's child or attr
	attrOff := make([]int32, n)
	childOff := make([]int32, n)
	off := int32(0)
	for i := 0; i < n; i++ {
		attrOff[i] = off
		off += attrCount[i]
		childOff[i] = off
		off += childCount[i]
	}
	ti := 0
	names := syms.Names()
	for i := 0; i < n; i++ {
		nd := &slab[i]
		nodes[i] = nd
		k := Kind(cols.Kind[i])
		nd.Kind = k
		nd.Pre = i
		nd.Post = int(cols.Post[i])
		nd.Size = int(cols.Size[i])
		nd.Level = int(cols.Level[i])
		nd.Sym = Sym(cols.Sym[i])
		nd.Doc = t
		switch k {
		case ElementNode:
			nd.Name = names[nd.Sym]
		case AttributeNode:
			nd.Name = names[nd.Sym]
			nd.Text = texts[ti]
			ti++
		case TextNode:
			nd.Text = texts[ti]
			ti++
		}
		if i == 0 {
			continue
		}
		p := cols.Parent[i]
		parent := nodes[p]
		if k == AttributeNode {
			if parent.Attrs == nil {
				a := attrOff[p]
				parent.Attrs = ptrs[a : a : a+attrCount[p]]
			}
			parent.Attrs = append(parent.Attrs, nd)
		} else {
			if parent.Children == nil {
				a := childOff[p]
				parent.Children = ptrs[a : a : a+childCount[p]]
			}
			parent.Children = append(parent.Children, nd)
		}
		nd.Parent = parent
	}
	t.Root = nodes[0]
	t.Nodes = nodes
}
