package xdm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// sampleTree builds:
//
//	<a id="1">
//	  <b><c>hello</c></b>
//	  <b><d/></b>
//	  <c>world</c>
//	</a>
func sampleTree() *Tree {
	a := NewElement("a")
	a.SetAttr("id", "1")
	b1 := NewElement("b")
	c1 := NewElement("c")
	c1.AppendChild(NewText("hello"))
	b1.AppendChild(c1)
	b2 := NewElement("b")
	b2.AppendChild(NewElement("d"))
	c2 := NewElement("c")
	c2.AppendChild(NewText("world"))
	a.AppendChild(b1)
	a.AppendChild(b2)
	a.AppendChild(c2)
	return Finalize(a)
}

func TestFinalizeRegions(t *testing.T) {
	tr := sampleTree()
	doc := tr.Root
	if doc.Kind != DocumentNode || doc.Pre != 0 || doc.Level != 0 {
		t.Fatalf("document node encoding wrong: %+v", doc)
	}
	a := tr.DocElem()
	if a == nil || a.Name != "a" {
		t.Fatalf("DocElem = %v", a)
	}
	if a.Pre != 1 || a.Level != 1 {
		t.Errorf("a encoding: pre=%d level=%d", a.Pre, a.Level)
	}
	// Region of the document spans every node.
	if doc.Size != len(tr.Nodes)-1 {
		t.Errorf("doc.Size = %d, want %d", doc.Size, len(tr.Nodes)-1)
	}
	// Attribute numbered right after its element.
	if len(a.Attrs) != 1 || a.Attrs[0].Pre != a.Pre+1 {
		t.Errorf("attribute pre = %d, want %d", a.Attrs[0].Pre, a.Pre+1)
	}
	// Nodes are indexed by Pre.
	for i, n := range tr.Nodes {
		if n.Pre != i {
			t.Fatalf("Nodes[%d].Pre = %d", i, n.Pre)
		}
	}
}

func TestContainsMatchesAncestry(t *testing.T) {
	tr := sampleTree()
	for _, n := range tr.Nodes {
		for _, d := range tr.Nodes {
			want := false
			for p := d.Parent; p != nil; p = p.Parent {
				if p == n {
					want = true
					break
				}
			}
			if got := n.Contains(d); got != want {
				t.Errorf("Contains(%v, %v) = %v, want %v", n, d, got, want)
			}
		}
	}
}

func TestStringValue(t *testing.T) {
	tr := sampleTree()
	if got := tr.DocElem().StringValue(); got != "helloworld" {
		t.Errorf("string value of <a> = %q", got)
	}
	cs := Step(tr.DocElem(), AxisChild, NameTest("c"))
	if len(cs) != 1 || cs[0].StringValue() != "world" {
		t.Errorf("child::c = %v", cs)
	}
	if tr.DocElem().Attrs[0].StringValue() != "1" {
		t.Error("attribute string value wrong")
	}
}

func TestStepAxes(t *testing.T) {
	tr := sampleTree()
	a := tr.DocElem()
	tests := []struct {
		axis Axis
		test NodeTest
		want int
	}{
		{AxisChild, NameTest("b"), 2},
		{AxisChild, NameTest("c"), 1},
		{AxisChild, StarTest(), 3},
		{AxisDescendant, NameTest("c"), 2},
		{AxisDescendant, StarTest(), 5},
		{AxisDescendant, TextTest(), 2},
		{AxisDescendantOrSelf, NameTest("a"), 1},
		{AxisAttribute, NameTest("id"), 1},
		{AxisAttribute, StarTest(), 1},
		{AxisSelf, NameTest("a"), 1},
		{AxisSelf, NameTest("b"), 0},
	}
	for _, tc := range tests {
		got := Step(a, tc.axis, tc.test)
		if len(got) != tc.want {
			t.Errorf("%s::%s from <a>: got %d nodes, want %d", tc.axis, tc.test, len(got), tc.want)
		}
		if !IsDocOrdered(SequenceOf(got)) {
			t.Errorf("%s::%s result not in document order", tc.axis, tc.test)
		}
	}
}

func TestReverseAxes(t *testing.T) {
	tr := sampleTree()
	ds := Step(tr.DocElem(), AxisDescendant, NameTest("d"))
	if len(ds) != 1 {
		t.Fatalf("descendant::d = %v", ds)
	}
	d := ds[0]
	if got := Step(d, AxisParent, StarTest()); len(got) != 1 || got[0].Name != "b" {
		t.Errorf("parent::* of d = %v", got)
	}
	anc := Step(d, AxisAncestor, StarTest())
	if len(anc) != 2 || anc[0].Name != "a" || anc[1].Name != "b" {
		t.Errorf("ancestor::* of d = %v", anc)
	}
	ancOS := Step(d, AxisAncestorOrSelf, AnyNodeTest())
	if len(ancOS) != 4 { // document, a, b, d
		t.Errorf("ancestor-or-self::node() of d = %v", ancOS)
	}
	if !IsDocOrdered(SequenceOf(anc)) {
		t.Error("ancestor axis result not in document order")
	}
}

func TestDDO(t *testing.T) {
	tr := sampleTree()
	a := tr.DocElem()
	bs := Step(a, AxisChild, NameTest("b"))
	// Shuffled with duplicates.
	seq := Sequence{bs[1], bs[0], bs[1], a}
	got, err := DDO(seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("DDO kept %d items, want 3", len(got))
	}
	if !IsDocOrdered(got) {
		t.Errorf("DDO result not ordered: %v", got)
	}
	if got[0].(*Node) != a {
		t.Errorf("DDO[0] = %v, want <a>", got[0])
	}
	if _, err := DDO(Sequence{String("x")}); err == nil {
		t.Error("DDO of atomic sequence should fail")
	}
}

func TestEffectiveBool(t *testing.T) {
	tr := sampleTree()
	cases := []struct {
		in   Sequence
		want bool
	}{
		{Sequence{}, false},
		{Sequence{tr.DocElem()}, true},
		{Sequence{tr.DocElem(), tr.Root}, true},
		{Sequence{Bool(true)}, true},
		{Sequence{Bool(false)}, false},
		{Sequence{String("")}, false},
		{Sequence{String("x")}, true},
		{Sequence{Float(0)}, false},
		{Sequence{Float(2.5)}, true},
		{Sequence{Integer(0)}, false},
		{Sequence{Integer(7)}, true},
	}
	for _, tc := range cases {
		got, err := EffectiveBool(tc.in)
		if err != nil {
			t.Fatalf("EffectiveBool(%v): %v", tc.in, err)
		}
		if got != tc.want {
			t.Errorf("EffectiveBool(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if _, err := EffectiveBool(Sequence{String("a"), String("b")}); err == nil {
		t.Error("EBV of multi-atomic sequence should fail")
	}
}

func TestGeneralCompare(t *testing.T) {
	tr := sampleTree()
	cs := Step(tr.DocElem(), AxisDescendant, NameTest("c"))
	// Existential: any c equal to "world"?
	ok, err := GeneralCompare(OpEq, SequenceOf(cs), Sequence{String("world")})
	if err != nil || !ok {
		t.Errorf("c = 'world': ok=%v err=%v", ok, err)
	}
	ok, _ = GeneralCompare(OpEq, SequenceOf(cs), Sequence{String("nope")})
	if ok {
		t.Error("c = 'nope' should be false")
	}
	// Untyped vs numeric: the attribute value "1" casts to a number.
	id := tr.DocElem().Attrs[0]
	ok, err = GeneralCompare(OpEq, Sequence{id}, Sequence{Integer(1)})
	if err != nil || !ok {
		t.Errorf("@id = 1: ok=%v err=%v", ok, err)
	}
	ok, err = GeneralCompare(OpLt, Sequence{Integer(3)}, Sequence{Float(3.5)})
	if err != nil || !ok {
		t.Errorf("3 < 3.5: ok=%v err=%v", ok, err)
	}
	// Empty operands: always false.
	ok, _ = GeneralCompare(OpEq, Sequence{}, Sequence{Integer(1)})
	if ok {
		t.Error("() = 1 should be false")
	}
	// Booleans compare with booleans only.
	if _, err := GeneralCompare(OpEq, Sequence{Bool(true)}, Sequence{Integer(1)}); err == nil {
		t.Error("boolean vs number should be a type error")
	}
}

func TestParseAxis(t *testing.T) {
	for name, want := range map[string]Axis{
		"child": AxisChild, "descendant": AxisDescendant, "desc": AxisDescendant,
		"descendant-or-self": AxisDescendantOrSelf, "dos": AxisDescendantOrSelf,
		"attribute": AxisAttribute, "attr": AxisAttribute, "self": AxisSelf,
		"parent": AxisParent, "ancestor": AxisAncestor, "ancestor-or-self": AxisAncestorOrSelf,
	} {
		got, err := ParseAxis(name)
		if err != nil || got != want {
			t.Errorf("ParseAxis(%q) = %v, %v", name, got, err)
		}
	}
	for name, want := range map[string]Axis{
		"following-sibling": AxisFollowingSibling, "preceding-sibling": AxisPrecedingSibling,
		"following": AxisFollowing, "preceding": AxisPreceding,
	} {
		if got, err := ParseAxis(name); err != nil || got != want {
			t.Errorf("ParseAxis(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseAxis("namespace"); err == nil {
		t.Error("unsupported axis should error")
	}
}

// randomTree builds a random tree with n element nodes for property tests.
func randomTree(rng *rand.Rand, n int) *Tree {
	names := []string{"a", "b", "c", "d"}
	root := NewElement("root")
	nodes := []*Node{root}
	for i := 1; i < n; i++ {
		parent := nodes[rng.Intn(len(nodes))]
		el := NewElement(names[rng.Intn(len(names))])
		if rng.Intn(4) == 0 {
			el.SetAttr("id", "x")
		}
		if rng.Intn(3) == 0 {
			el.AppendChild(NewText("t"))
		}
		parent.AppendChild(el)
		nodes = append(nodes, el)
	}
	return Finalize(root)
}

// Property: region encoding is consistent — Pre+Size covers exactly the
// subtree, Post order inverts ancestry, and Step(descendant) agrees with
// Contains.
func TestRegionEncodingProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTree(rng, 2+rng.Intn(60))
		for _, n := range tr.Nodes {
			// size = number of nodes with Pre in (n.Pre, n.Pre+n.Size].
			cnt := 0
			for _, m := range tr.Nodes {
				if n.Contains(m) {
					cnt++
				}
			}
			if cnt != n.Size {
				return false
			}
			// Ancestry iff (pre smaller, post larger).
			for _, m := range tr.Nodes {
				if m == n || m.Kind == AttributeNode || n.Kind == AttributeNode {
					continue
				}
				anc := n.Pre < m.Pre && n.Post > m.Post
				if anc != n.Contains(m) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: DDO is idempotent and produces ordered duplicate-free output.
func TestDDOProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTree(rng, 2+rng.Intn(40))
		var seq Sequence
		for i := 0; i < rng.Intn(50); i++ {
			seq = append(seq, tr.Nodes[rng.Intn(len(tr.Nodes))])
		}
		once, err := DDO(seq)
		if err != nil {
			return false
		}
		if !IsDocOrdered(once) {
			return false
		}
		twice, err := DDO(once)
		if err != nil || len(twice) != len(once) {
			return false
		}
		for i := range twice {
			if twice[i] != once[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: every navigational Step returns document-ordered duplicate-free
// results consistent with a brute-force scan of the tree.
func TestStepProperty(t *testing.T) {
	axes := []Axis{AxisChild, AxisDescendant, AxisDescendantOrSelf, AxisAttribute, AxisSelf,
		AxisParent, AxisAncestor, AxisFollowingSibling, AxisPrecedingSibling, AxisFollowing, AxisPreceding}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTree(rng, 2+rng.Intn(50))
		ctx := tr.Nodes[rng.Intn(len(tr.Nodes))]
		axis := axes[rng.Intn(len(axes))]
		test := NameTest([]string{"a", "b", "c", "d"}[rng.Intn(4)])
		got := Step(ctx, axis, test)
		if !IsDocOrdered(SequenceOf(got)) {
			return false
		}
		// Brute force.
		want := map[*Node]bool{}
		for _, m := range tr.Nodes {
			var onAxis bool
			switch axis {
			case AxisChild:
				onAxis = m.Parent == ctx && m.Kind != AttributeNode
			case AxisDescendant:
				onAxis = ctx.Contains(m) && m.Kind != AttributeNode
			case AxisDescendantOrSelf:
				onAxis = (m == ctx || ctx.Contains(m)) && m.Kind != AttributeNode
			case AxisAttribute:
				onAxis = m.Parent == ctx && m.Kind == AttributeNode
			case AxisSelf:
				onAxis = m == ctx
			case AxisParent:
				onAxis = ctx.Parent == m
			case AxisAncestor:
				onAxis = m.Contains(ctx) && m.Kind != AttributeNode
			case AxisFollowingSibling:
				onAxis = m.Parent == ctx.Parent && m != ctx && m.Kind != AttributeNode &&
					ctx.Kind != AttributeNode && ctx.Parent != nil && m.Pre > ctx.Pre
			case AxisPrecedingSibling:
				onAxis = m.Parent == ctx.Parent && m != ctx && m.Kind != AttributeNode &&
					ctx.Kind != AttributeNode && ctx.Parent != nil && m.Pre < ctx.Pre
			case AxisFollowing:
				onAxis = m.Kind != AttributeNode && m.Pre > ctx.End()
			case AxisPreceding:
				onAxis = m.Kind != AttributeNode && m.Pre < ctx.Pre && !m.Contains(ctx) && m.Pre > 0
			}
			if onAxis && test.Matches(axis, m) {
				want[m] = true
			}
		}
		if len(got) != len(want) {
			return false
		}
		for _, g := range got {
			if !want[g] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
