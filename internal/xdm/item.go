// Package xdm implements the fragment of the XQuery Data Model (XDM) that
// the tree-pattern compiler operates on: documents, element/attribute/text
// nodes with node identity and document order, sequences of items, atomic
// values, effective boolean values, atomization and general comparisons.
//
// Every node carries a region encoding (pre, size, post, level) assigned at
// construction time; the staircase and twig join algorithms are built on top
// of that encoding.
package xdm

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Item is a single XDM item: either a *Node or an atomic value (String,
// Float, Integer, Bool). A Sequence is an ordered list of items.
type Item interface {
	isItem()
}

// String is an xs:string (also used for untyped atomic values obtained by
// atomizing nodes).
type String string

// Float is an xs:double.
type Float float64

// Integer is an xs:integer.
type Integer int64

// Bool is an xs:boolean.
type Bool bool

func (String) isItem()  {}
func (Float) isItem()   {}
func (Integer) isItem() {}
func (Bool) isItem()    {}
func (*Node) isItem()   {}

// Sequence is an ordered sequence of items, the result type of every
// expression in the language.
type Sequence []Item

// Singleton wraps one item in a sequence.
func Singleton(it Item) Sequence { return Sequence{it} }

// Empty reports whether the sequence has no items.
func (s Sequence) Empty() bool { return len(s) == 0 }

// IsNumeric reports whether the item is an xs:double or xs:integer.
func IsNumeric(it Item) bool {
	switch it.(type) {
	case Float, Integer:
		return true
	}
	return false
}

// NumericValue returns the float64 value of a numeric item.
func NumericValue(it Item) (float64, bool) {
	switch v := it.(type) {
	case Float:
		return float64(v), true
	case Integer:
		return float64(v), true
	}
	return 0, false
}

// Atomize converts an item to its atomic value: nodes become untyped-atomic
// strings (their string value), atomics are returned unchanged.
func Atomize(it Item) Item {
	if n, ok := it.(*Node); ok {
		return String(n.StringValue())
	}
	return it
}

// AtomizeSequence atomizes every item of a sequence.
func AtomizeSequence(s Sequence) Sequence {
	out := make(Sequence, len(s))
	for i, it := range s {
		out[i] = Atomize(it)
	}
	return out
}

// EffectiveBool computes the XPath effective boolean value of a sequence:
// the empty sequence is false; a sequence whose first item is a node is
// true; a singleton boolean, string or number is converted; anything else
// is a type error.
func EffectiveBool(s Sequence) (bool, error) {
	if len(s) == 0 {
		return false, nil
	}
	if _, ok := s[0].(*Node); ok {
		return true, nil
	}
	if len(s) != 1 {
		return false, fmt.Errorf("xdm: effective boolean value of sequence of %d atomic items", len(s))
	}
	switch v := s[0].(type) {
	case Bool:
		return bool(v), nil
	case String:
		return len(v) > 0, nil
	case Float:
		return !math.IsNaN(float64(v)) && v != 0, nil
	case Integer:
		return v != 0, nil
	}
	return false, fmt.Errorf("xdm: effective boolean value of %T", s[0])
}

// CompareOp identifies a general comparison operator.
type CompareOp int

// General comparison operators.
const (
	OpEq CompareOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator in XQuery surface syntax.
func (op CompareOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	}
	return "?"
}

// GeneralCompare implements XPath general comparisons: both operands are
// atomized and the comparison holds if it holds for any pair of atomic
// values (existential semantics).
func GeneralCompare(op CompareOp, lhs, rhs Sequence) (bool, error) {
	la := AtomizeSequence(lhs)
	ra := AtomizeSequence(rhs)
	for _, l := range la {
		for _, r := range ra {
			ok, err := compareAtomic(op, l, r)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
	}
	return false, nil
}

// compareAtomic compares two atomic values under the value-comparison rules
// used by general comparisons: untyped values are cast to the type of the
// other operand (numbers win over strings).
func compareAtomic(op CompareOp, l, r Item) (bool, error) {
	// Boolean comparisons.
	if lb, ok := l.(Bool); ok {
		rb, ok := r.(Bool)
		if !ok {
			return false, fmt.Errorf("xdm: cannot compare boolean with %T", r)
		}
		return cmpOrdered(op, b2i(bool(lb)), b2i(bool(rb))), nil
	}
	if _, ok := r.(Bool); ok {
		return false, fmt.Errorf("xdm: cannot compare %T with boolean", l)
	}
	// Numeric comparison if either side is numeric: the other (untyped
	// string) side is cast to a number.
	ln, lIsNum := NumericValue(l)
	rn, rIsNum := NumericValue(r)
	switch {
	case lIsNum && rIsNum:
		return cmpOrdered(op, ln, rn), nil
	case lIsNum:
		rv, err := castNumber(r)
		if err != nil {
			return false, err
		}
		return cmpOrdered(op, ln, rv), nil
	case rIsNum:
		lv, err := castNumber(l)
		if err != nil {
			return false, err
		}
		return cmpOrdered(op, lv, rn), nil
	}
	// String comparison.
	ls, lok := l.(String)
	rs, rok := r.(String)
	if !lok || !rok {
		return false, fmt.Errorf("xdm: cannot compare %T with %T", l, r)
	}
	return cmpOrdered(op, string(ls), string(rs)), nil
}

func castNumber(it Item) (float64, error) {
	s, ok := it.(String)
	if !ok {
		return 0, fmt.Errorf("xdm: cannot cast %T to number", it)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(string(s)), 64)
	if err != nil {
		return 0, fmt.Errorf("xdm: cannot cast %q to number", string(s))
	}
	return v, nil
}

func cmpOrdered[T int | float64 | string](op CompareOp, l, r T) bool {
	switch op {
	case OpEq:
		return l == r
	case OpNe:
		return l != r
	case OpLt:
		return l < r
	case OpLe:
		return l <= r
	case OpGt:
		return l > r
	case OpGe:
		return l >= r
	}
	return false
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// ItemString renders an item for display: nodes as their XML serialization
// header, atomics as their lexical value.
func ItemString(it Item) string {
	switch v := it.(type) {
	case *Node:
		return v.String()
	case String:
		return string(v)
	case Float:
		return strconv.FormatFloat(float64(v), 'g', -1, 64)
	case Integer:
		return strconv.FormatInt(int64(v), 10)
	case Bool:
		return strconv.FormatBool(bool(v))
	}
	return fmt.Sprintf("%v", it)
}
