package xdm

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ArithOp identifies an arithmetic operator.
type ArithOp int

// Arithmetic operators.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
	OpIDiv
	OpMod
)

// String renders the operator in XQuery syntax.
func (op ArithOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "div"
	case OpIDiv:
		return "idiv"
	case OpMod:
		return "mod"
	}
	return "?"
}

// Arithmetic implements XPath arithmetic: operands are atomized, an empty
// operand yields the empty sequence, untyped values are cast to numbers;
// integer arithmetic stays integral except for div.
func Arithmetic(op ArithOp, lhs, rhs Sequence) (Sequence, error) {
	l, lEmpty, lInt, err := arithOperand(lhs)
	if err != nil {
		return nil, err
	}
	r, rEmpty, rInt, err := arithOperand(rhs)
	if err != nil {
		return nil, err
	}
	if lEmpty || rEmpty {
		return nil, nil
	}
	bothInt := lInt && rInt
	switch op {
	case OpAdd:
		return arithResult(l+r, bothInt), nil
	case OpSub:
		return arithResult(l-r, bothInt), nil
	case OpMul:
		return arithResult(l*r, bothInt), nil
	case OpDiv:
		if r == 0 && bothInt {
			return nil, fmt.Errorf("xdm: integer division by zero")
		}
		return Singleton(Float(l / r)), nil
	case OpIDiv:
		if r == 0 {
			return nil, fmt.Errorf("xdm: integer division by zero")
		}
		return Singleton(Integer(int64(math.Trunc(l / r)))), nil
	case OpMod:
		if r == 0 {
			return nil, fmt.Errorf("xdm: modulus by zero")
		}
		if bothInt {
			return Singleton(Integer(int64(l) % int64(r))), nil
		}
		return Singleton(Float(math.Mod(l, r))), nil
	}
	return nil, fmt.Errorf("xdm: unknown arithmetic operator")
}

func arithOperand(s Sequence) (val float64, empty, isInt bool, err error) {
	if len(s) == 0 {
		return 0, true, false, nil
	}
	if len(s) != 1 {
		return 0, false, false, fmt.Errorf("xdm: arithmetic over a sequence of %d items", len(s))
	}
	switch v := Atomize(s[0]).(type) {
	case Integer:
		return float64(v), false, true, nil
	case Float:
		return float64(v), false, false, nil
	case String:
		f, perr := strconv.ParseFloat(strings.TrimSpace(string(v)), 64)
		if perr != nil {
			return 0, false, false, fmt.Errorf("xdm: cannot cast %q to a number", string(v))
		}
		return f, false, false, nil
	}
	return 0, false, false, fmt.Errorf("xdm: arithmetic over %T", s[0])
}

func arithResult(v float64, isInt bool) Sequence {
	if isInt && v == math.Trunc(v) {
		return Singleton(Integer(int64(v)))
	}
	return Singleton(Float(v))
}
