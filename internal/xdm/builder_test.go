package xdm

import (
	"fmt"
	"math/rand"
	"testing"
)

// buildBoth constructs the same small document through Finalize (pointer
// construction + re-walk) and through the TreeBuilder, for equivalence
// checks.
func buildBoth() (*Tree, *Tree) {
	// <r a="1" b="2"><x>hi</x><y c="3"><x/></y>tail</r>
	r := NewElement("r")
	r.SetAttr("a", "1")
	r.SetAttr("b", "2")
	x1 := NewElement("x")
	x1.AppendChild(NewText("hi"))
	r.AppendChild(x1)
	y := NewElement("y")
	y.SetAttr("c", "3")
	y.AppendChild(NewElement("x"))
	r.AppendChild(y)
	r.AppendChild(NewText("tail"))
	ref := Finalize(r)

	b := NewTreeBuilder(0)
	b.OpenElement([]byte("r"))
	b.Attr([]byte("a"), "1")
	b.Attr([]byte("b"), "2")
	b.OpenElement([]byte("x"))
	b.Text("hi")
	b.CloseElement()
	b.OpenElement([]byte("y"))
	b.Attr([]byte("c"), "3")
	b.OpenElement([]byte("x"))
	b.CloseElement()
	b.CloseElement()
	b.Text("tail")
	b.CloseElement()
	return ref, b.Finish()
}

// CheckTreesEqual fails the test unless the two trees are structurally
// identical: same nodes in preorder (kind, name, symbol, text, region
// encoding, parent), same child/attribute lists, same symbol tables, and
// same SoA columns. Exported to the package tests only; the xmlstore
// differential suite has its own copy working through the public API.
func checkTreesEqual(t *testing.T, want, got *Tree) {
	t.Helper()
	if want.CountNodes() != got.CountNodes() {
		t.Fatalf("node count %d != %d", got.CountNodes(), want.CountNodes())
	}
	if want.Syms.Len() != got.Syms.Len() {
		t.Fatalf("symbol count %d != %d", got.Syms.Len(), want.Syms.Len())
	}
	for s := 0; s < want.Syms.Len(); s++ {
		if want.Syms.Name(Sym(s)) != got.Syms.Name(Sym(s)) {
			t.Fatalf("symbol %d: %q != %q", s, got.Syms.Name(Sym(s)), want.Syms.Name(Sym(s)))
		}
	}
	for pre := range want.Nodes {
		w, g := want.Nodes[pre], got.Nodes[pre]
		if w.Kind != g.Kind || w.Name != g.Name || w.Text != g.Text || w.Sym != g.Sym {
			t.Fatalf("pre %d: node %v != %v", pre, g, w)
		}
		if w.Pre != g.Pre || w.Post != g.Post || w.Size != g.Size || w.Level != g.Level {
			t.Fatalf("pre %d: encoding (pre=%d post=%d size=%d level=%d) != (pre=%d post=%d size=%d level=%d)",
				pre, g.Pre, g.Post, g.Size, g.Level, w.Pre, w.Post, w.Size, w.Level)
		}
		wp, gp := -1, -1
		if w.Parent != nil {
			wp = w.Parent.Pre
		}
		if g.Parent != nil {
			gp = g.Parent.Pre
		}
		if wp != gp {
			t.Fatalf("pre %d: parent %d != %d", pre, gp, wp)
		}
		if len(w.Children) != len(g.Children) || len(w.Attrs) != len(g.Attrs) {
			t.Fatalf("pre %d: %d children/%d attrs != %d children/%d attrs",
				pre, len(g.Children), len(g.Attrs), len(w.Children), len(w.Attrs))
		}
		for i := range w.Children {
			if w.Children[i].Pre != g.Children[i].Pre {
				t.Fatalf("pre %d child %d: %d != %d", pre, i, g.Children[i].Pre, w.Children[i].Pre)
			}
		}
		for i := range w.Attrs {
			if w.Attrs[i].Pre != g.Attrs[i].Pre {
				t.Fatalf("pre %d attr %d: %d != %d", pre, i, g.Attrs[i].Pre, w.Attrs[i].Pre)
			}
		}
		if g.Doc != got {
			t.Fatalf("pre %d: Doc pointer not set", pre)
		}
	}
	wc, gc := want.Cols, got.Cols
	for pre := range want.Nodes {
		if wc.Post[pre] != gc.Post[pre] || wc.Size[pre] != gc.Size[pre] ||
			wc.Level[pre] != gc.Level[pre] || wc.Parent[pre] != gc.Parent[pre] ||
			wc.Kind[pre] != gc.Kind[pre] || wc.Sym[pre] != gc.Sym[pre] {
			t.Fatalf("pre %d: column mismatch (post %d/%d size %d/%d level %d/%d parent %d/%d kind %d/%d sym %d/%d)",
				pre, gc.Post[pre], wc.Post[pre], gc.Size[pre], wc.Size[pre], gc.Level[pre], wc.Level[pre],
				gc.Parent[pre], wc.Parent[pre], gc.Kind[pre], wc.Kind[pre], gc.Sym[pre], wc.Sym[pre])
		}
	}
}

func TestBuilderMatchesFinalize(t *testing.T) {
	want, got := buildBoth()
	checkTreesEqual(t, want, got)
}

func TestBuilderEmptyRoot(t *testing.T) {
	b := NewTreeBuilder(0)
	b.OpenElement([]byte("only"))
	if b.Depth() != 1 {
		t.Fatalf("Depth = %d, want 1", b.Depth())
	}
	b.CloseElement()
	tr := b.Finish()
	want := Finalize(NewElement("only"))
	checkTreesEqual(t, want, tr)
}

// TestBuilderRandomTrees drives both construction paths with an identical
// random event sequence and checks structural equality, exercising the slab
// and pointer arenas across chunk boundaries.
func TestBuilderRandomTrees(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b := NewTreeBuilder(0)
		root := NewElement("root")
		b.OpenElement([]byte("root"))
		stack := []*Node{root}
		for i := 0; i < 2000; i++ {
			switch op := rng.Intn(10); {
			case op < 4: // open child
				name := fmt.Sprintf("t%d", rng.Intn(7))
				el := NewElement(name)
				stack[len(stack)-1].AppendChild(el)
				stack = append(stack, el)
				b.OpenElement([]byte(name))
			case op < 6 && len(stack) > 1: // close
				stack = stack[:len(stack)-1]
				b.CloseElement()
			case op == 6: // attribute (only valid right after open: emulate by
				// attaching to the current top before it has children)
				if top := stack[len(stack)-1]; len(top.Children) == 0 {
					name := fmt.Sprintf("a%d", rng.Intn(4))
					top.SetAttr(name, "v")
					b.Attr([]byte(name), "v")
				}
			default: // text
				top := stack[len(stack)-1]
				top.AppendChild(NewText("x"))
				b.Text("x")
			}
		}
		for len(stack) > 1 {
			stack = stack[:len(stack)-1]
			b.CloseElement()
		}
		b.CloseElement()
		want := Finalize(root)
		got := b.Finish()
		checkTreesEqual(t, want, got)
	}
}
