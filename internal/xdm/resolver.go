package xdm

// DocResolver gives query evaluation access to a document collection: the
// run-time counterpart of fn:doc($uri) and fn:collection(). A resolver is
// bound per run (physical.Runtime, core evaluation environment), so the same
// compiled plan serves any corpus — the document side never leaks into the
// plan.
//
// Implementations must be safe for concurrent use: one resolver is shared by
// every goroutine evaluating against its corpus.
type DocResolver interface {
	// ResolveDoc returns the document node for uri.
	ResolveDoc(uri string) (*Node, error)
	// ResolveCollection returns the document nodes of the collection named
	// name ("" is the default collection: every member document), in stable
	// corpus order. The returned sequence must be in document order — corpus
	// members carry ascending tree IDs — so fs:ddo over it is the identity.
	ResolveCollection(name string) (Sequence, error)
}

// AssignTreeIDs reassigns the IDs of ts — in slice order — from a freshly
// reserved contiguous block of the global tree-ID counter. A corpus built by
// concurrent ingest workers calls this once after the last document lands:
// member order then coincides with cross-document order (CompareOrder ranks
// documents by ID), so merged query results are deterministic no matter how
// the parallel ingest interleaved the original ID draws.
//
// The trees must not be visible to any concurrent reader yet; IDs are plain
// fields.
func AssignTreeIDs(ts []*Tree) {
	if len(ts) == 0 {
		return
	}
	base := nextTreeID.Add(int64(len(ts))) - int64(len(ts))
	for i, t := range ts {
		t.ID = int(base) + 1 + i
	}
}
