package xdm

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind distinguishes the node kinds of the supported XDM fragment.
type Kind uint8

// Node kinds.
const (
	DocumentNode Kind = iota
	ElementNode
	AttributeNode
	TextNode
)

// String names the node kind.
func (k Kind) String() string {
	switch k {
	case DocumentNode:
		return "document"
	case ElementNode:
		return "element"
	case AttributeNode:
		return "attribute"
	case TextNode:
		return "text"
	}
	return "unknown"
}

// Node is a node in an XML tree. Nodes have identity (pointer identity) and
// carry a region encoding assigned by Finalize:
//
//	Pre    preorder rank in the document (document node = 0); attributes are
//	       numbered directly after their owner element, before its children
//	Size   number of nodes in the subtree below (attributes included), so a
//	       node n contains node d iff n.Pre < d.Pre && d.Pre <= n.Pre+n.Size
//	Post   postorder rank
//	Level  depth (document node = 0)
type Node struct {
	Kind     Kind
	Name     string // element/attribute name
	Text     string // text content (text and attribute nodes)
	Parent   *Node
	Children []*Node // element and text children, in document order
	Attrs    []*Node // attribute nodes

	Pre, Post, Size, Level int
	Sym                    Sym // interned Name (assigned by Finalize; NoSym if unnamed)
	Doc                    *Tree
}

// Tree is a document: the document node plus the pre-order array of all its
// nodes (the base table that the index streams are views over).
//
// Trees built by the parser or Finalize carry Root and Nodes from the start.
// Snapshot-loaded trees (TreeFromColumns) defer the pointer data model: Root
// and Nodes stay nil until a choke point — RootNode, Materialize, DocElem —
// forces materialization, so opening a corpus costs column slicing only and
// untouched members never pay for their Node structs. Code outside this
// package never holds a *Node of an unmaterialized tree (nodes are only
// reachable through the forcing accessors), so direct navigation through
// Node pointers needs no checks.
type Tree struct {
	ID    int      // document identifier for cross-document ordering
	Root  *Node    // the document node (nil until forced on lazy trees)
	Nodes []*Node  // all nodes, indexed by Pre (nil until forced on lazy trees)
	Syms  *Symbols // interned element/attribute names (immutable after Finalize)
	Cols  *Cols    // structure-of-arrays region encoding, indexed by Pre

	// lazy holds the deferred-materialization state of a snapshot-loaded
	// tree; nil on trees built eagerly.
	lazy *lazyNodes
}

// lazyNodes is the pending pointer-model build of a snapshot-loaded tree:
// the text values (the one piece of node state not in the columns), the
// once gate that makes concurrent forcing safe, and — for deferred snapshot
// members — the loader that parses and validates the member's bytes on
// first use.
type lazyNodes struct {
	once   sync.Once
	loader func() error // fills Cols/Syms/texts before materialization; nil when the columns are already present
	texts  []string
	err    error // sticky loader failure (the tree is poisoned to an empty document)
}

// force materializes the pointer data model of a lazy tree; a no-op on
// eager trees and after the first call. Safe for concurrent use: Once.Do
// publishes Root/Nodes to every caller that passes a choke point.
//
// On a shell tree the loader runs first. force cannot return an error, so a
// failed load installs a minimal placeholder document instead of leaving
// Root/Nodes nil: navigation through a poisoned tree yields an empty
// document rather than a nil-pointer crash, and the sticky error surfaces
// through LoadErr at the error-returning boundaries (prepare, resolve).
func (t *Tree) force() {
	if l := t.lazy; l != nil {
		l.once.Do(func() {
			if l.loader != nil {
				if err := l.loader(); err != nil {
					l.err = err
					t.poison()
					return
				}
			}
			t.materialize(l.texts)
		})
	}
}

// LoadErr reports the sticky failure of a shell tree whose deferred load
// ran and failed (nil otherwise, including before the load has run).
func (t *Tree) LoadErr() error {
	if l := t.lazy; l != nil {
		return l.err
	}
	return nil
}

// poison installs a minimal two-node document (document node over one empty
// element) after a failed deferred load, so pointer navigation stays safe.
// Cols stays nil; queries reach the load error before any kernel touches
// the columns.
func (t *Tree) poison() {
	doc := &Node{Kind: DocumentNode, Sym: NoSym, Size: 1, Post: 1, Doc: t}
	el := &Node{Kind: ElementNode, Sym: NoSym, Pre: 1, Level: 1, Parent: doc, Doc: t}
	doc.Children = []*Node{el}
	t.Root = doc
	t.Nodes = []*Node{doc, el}
	if t.Syms == nil {
		t.Syms = newSymbols()
	}
}

// NewShellTree returns an empty tree whose columns, symbols and text values
// arrive later through load. The deferred snapshot loader builds one shell
// per member at open time: the shell gives the corpus layer a stable
// identity (tree pointer and ID, the keys of the catalog and preparation
// caches) while the member's bytes stay untouched on disk. load runs at
// most once, under the same once gate as materialization; it must fill
// Cols/Syms (FillColumns) before returning nil.
func NewShellTree(load func() error) *Tree {
	return &Tree{
		ID:   int(nextTreeID.Add(1)),
		lazy: &lazyNodes{loader: load},
	}
}

// RootNode returns the document node, materializing a snapshot-loaded
// tree's pointer data model on first use. Prefer this over reading Root
// directly when the tree may come from a snapshot.
func (t *Tree) RootNode() *Node {
	t.force()
	return t.Root
}

// TextValues returns the values of the text-bearing nodes (text and
// attribute nodes) in preorder. On lazy trees this reads the stored values
// without forcing materialization — the snapshot writer's path.
func (t *Tree) TextValues() []string {
	if l := t.lazy; l != nil {
		return l.texts
	}
	out := make([]string, 0, len(t.Nodes)/4)
	for _, n := range t.Nodes {
		if n.Kind == TextNode || n.Kind == AttributeNode {
			out = append(out, n.Text)
		}
	}
	return out
}

// Cols is the structure-of-arrays mirror of the tree's region encoding: one
// flat column per encoding field, all indexed by preorder rank. The columns
// are the native currency of the set-at-a-time join kernels — a containment
// test is two int32 compares against Size, with no Node pointer ever
// dereferenced — and they pack ~21 bytes per node against the cache instead
// of scattering the encoding across heap objects. Built by Finalize;
// immutable afterwards.
type Cols struct {
	Post   []int32
	Size   []int32
	Level  []int32
	Parent []int32 // preorder rank of the parent; -1 for the document node
	Kind   []uint8
	Sym    []int32 // interned name; int32(NoSym) for document and text nodes
}

// End returns the last preorder rank inside node n's region.
func (c *Cols) End(n int32) int32 { return n + c.Size[n] }

// Contains reports whether d is a proper descendant of a (both pre ranks of
// one tree; attributes of a contained element count as contained).
func (c *Cols) Contains(a, d int32) bool { return a < d && d <= a+c.Size[a] }

// FirstChild returns the preorder rank of n's first non-attribute child, or
// end+1 ranks past the region when n has none. Iterate children columnar
// style with NextSibling:
//
//	for ch := c.FirstChild(n); ch <= c.End(n); ch = c.NextSibling(ch) { ... }
func (c *Cols) FirstChild(n int32) int32 {
	ch := n + 1
	end := c.End(n)
	for ch <= end && Kind(c.Kind[ch]) == AttributeNode {
		ch++
	}
	return ch
}

// NextSibling returns the preorder rank directly after n's region — n's next
// sibling whenever one exists under the same parent.
func (c *Cols) NextSibling(n int32) int32 { return n + c.Size[n] + 1 }

// NewElement returns a detached element node.
func NewElement(name string) *Node { return &Node{Kind: ElementNode, Name: name} }

// NewText returns a detached text node.
func NewText(text string) *Node { return &Node{Kind: TextNode, Text: text} }

// NewAttr returns a detached attribute node.
func NewAttr(name, value string) *Node {
	return &Node{Kind: AttributeNode, Name: name, Text: value}
}

// AppendChild appends c (an element or text node) to n and sets its parent.
func (n *Node) AppendChild(c *Node) *Node {
	c.Parent = n
	n.Children = append(n.Children, c)
	return n
}

// SetAttr appends an attribute node to n.
func (n *Node) SetAttr(name, value string) *Node {
	a := NewAttr(name, value)
	a.Parent = n
	n.Attrs = append(n.Attrs, a)
	return n
}

var nextTreeID atomic.Int64

// Finalize wraps root (an element) in a document node, assigns region
// encodings to every node and returns the resulting Tree. The tree must not
// be mutated afterwards.
func Finalize(root *Node) *Tree {
	doc := &Node{Kind: DocumentNode, Sym: NoSym}
	doc.AppendChild(root)
	t := &Tree{Root: doc, ID: int(nextTreeID.Add(1)), Syms: newSymbols()}
	pre, post := 0, 0
	var walk func(n *Node, level int)
	walk = func(n *Node, level int) {
		n.Pre = pre
		n.Level = level
		n.Doc = t
		switch n.Kind {
		case ElementNode, AttributeNode:
			n.Sym = t.Syms.intern(n.Name)
		default:
			n.Sym = NoSym
		}
		pre++
		t.Nodes = append(t.Nodes, n)
		for _, a := range n.Attrs {
			a.Pre = pre
			a.Level = level + 1
			a.Doc = t
			a.Sym = t.Syms.intern(a.Name)
			a.Size = 0
			a.Post = post
			post++
			pre++
			t.Nodes = append(t.Nodes, a)
		}
		for _, c := range n.Children {
			walk(c, level+1)
		}
		n.Post = post
		post++
		n.Size = pre - n.Pre - 1
	}
	walk(doc, 0)
	t.buildCols()
	return t
}

// buildCols fills the structure-of-arrays mirror from the finalized nodes.
func (t *Tree) buildCols() {
	n := len(t.Nodes)
	c := &Cols{
		Post:   make([]int32, n),
		Size:   make([]int32, n),
		Level:  make([]int32, n),
		Parent: make([]int32, n),
		Kind:   make([]uint8, n),
		Sym:    make([]int32, n),
	}
	for i, nd := range t.Nodes {
		c.Post[i] = int32(nd.Post)
		c.Size[i] = int32(nd.Size)
		c.Level[i] = int32(nd.Level)
		if nd.Parent != nil {
			c.Parent[i] = int32(nd.Parent.Pre)
		} else {
			c.Parent[i] = -1
		}
		c.Kind[i] = uint8(nd.Kind)
		c.Sym[i] = int32(nd.Sym)
	}
	t.Cols = c
}

// Materialize resolves a slice of preorder ranks to the nodes themselves —
// the one place integer results cross back into the pointer data model
// (forcing a lazy tree on first use).
func (t *Tree) Materialize(ranks []int32) []*Node {
	if len(ranks) == 0 {
		return nil
	}
	t.force()
	out := make([]*Node, len(ranks))
	for i, r := range ranks {
		out[i] = t.Nodes[r]
	}
	return out
}

// Contains reports whether d is a proper descendant of n (attributes of a
// contained element count as contained).
func (n *Node) Contains(d *Node) bool {
	return n.Doc == d.Doc && n.Pre < d.Pre && d.Pre <= n.Pre+n.Size
}

// End returns the last preorder rank inside n's region.
func (n *Node) End() int { return n.Pre + n.Size }

// StringValue returns the XPath string value of the node: the concatenation
// of all descendant text for documents and elements, the stored text for
// text and attribute nodes.
func (n *Node) StringValue() string {
	switch n.Kind {
	case TextNode, AttributeNode:
		return n.Text
	}
	var b strings.Builder
	var walk func(*Node)
	walk = func(c *Node) {
		if c.Kind == TextNode {
			b.WriteString(c.Text)
			return
		}
		for _, ch := range c.Children {
			walk(ch)
		}
	}
	walk(n)
	return b.String()
}

// String renders a short human-readable description of the node.
func (n *Node) String() string {
	switch n.Kind {
	case DocumentNode:
		return "document{}"
	case ElementNode:
		return fmt.Sprintf("<%s>[pre=%d]", n.Name, n.Pre)
	case AttributeNode:
		return fmt.Sprintf("@%s=%q", n.Name, n.Text)
	case TextNode:
		return fmt.Sprintf("text(%q)", n.Text)
	}
	return "node?"
}

// CountNodes returns the number of nodes in the tree (including the document
// node and attribute nodes). Answered from the columns when present, so it
// never forces a lazy tree.
func (t *Tree) CountNodes() int {
	if t.Cols != nil {
		return len(t.Cols.Kind)
	}
	return len(t.Nodes)
}

// DocElem returns the single element child of the document node, or nil.
func (t *Tree) DocElem() *Node {
	for _, c := range t.RootNode().Children {
		if c.Kind == ElementNode {
			return c
		}
	}
	return nil
}
