package xdm

import "fmt"

// Axis is an XPath axis. Tree patterns use the forward subset (child,
// descendant, descendant-or-self, attribute, self); the navigational
// evaluator additionally supports the reverse axes so that queries outside
// the tree-pattern fragment still run.
type Axis uint8

// Supported axes.
const (
	AxisChild Axis = iota
	AxisDescendant
	AxisDescendantOrSelf
	AxisAttribute
	AxisSelf
	AxisParent
	AxisAncestor
	AxisAncestorOrSelf
	AxisFollowingSibling
	AxisPrecedingSibling
	AxisFollowing
	AxisPreceding
)

// String renders the axis in XPath syntax.
func (a Axis) String() string {
	switch a {
	case AxisChild:
		return "child"
	case AxisDescendant:
		return "descendant"
	case AxisDescendantOrSelf:
		return "descendant-or-self"
	case AxisAttribute:
		return "attribute"
	case AxisSelf:
		return "self"
	case AxisParent:
		return "parent"
	case AxisAncestor:
		return "ancestor"
	case AxisAncestorOrSelf:
		return "ancestor-or-self"
	case AxisFollowingSibling:
		return "following-sibling"
	case AxisPrecedingSibling:
		return "preceding-sibling"
	case AxisFollowing:
		return "following"
	case AxisPreceding:
		return "preceding"
	}
	return "axis?"
}

// Forward reports whether the axis only selects nodes at or below the
// context node (the tree-pattern fragment).
func (a Axis) Forward() bool {
	switch a {
	case AxisChild, AxisDescendant, AxisDescendantOrSelf, AxisAttribute, AxisSelf:
		return true
	}
	return false
}

// ParseAxis resolves an axis name (including the common abbreviations used
// in the paper, e.g. "desc") to an Axis.
func ParseAxis(name string) (Axis, error) {
	switch name {
	case "child":
		return AxisChild, nil
	case "descendant", "desc":
		return AxisDescendant, nil
	case "descendant-or-self", "dos":
		return AxisDescendantOrSelf, nil
	case "attribute", "attr":
		return AxisAttribute, nil
	case "self":
		return AxisSelf, nil
	case "parent":
		return AxisParent, nil
	case "ancestor":
		return AxisAncestor, nil
	case "ancestor-or-self":
		return AxisAncestorOrSelf, nil
	case "following-sibling":
		return AxisFollowingSibling, nil
	case "preceding-sibling":
		return AxisPrecedingSibling, nil
	case "following":
		return AxisFollowing, nil
	case "preceding":
		return AxisPreceding, nil
	}
	return 0, fmt.Errorf("xdm: unknown axis %q", name)
}

// TestKind distinguishes node tests.
type TestKind uint8

// Node test kinds.
const (
	TestName TestKind = iota // name test: person (principal node kind of the axis)
	TestStar                 // *
	TestNode                 // node()
	TestText                 // text()
)

// NodeTest is an XPath node test.
type NodeTest struct {
	Kind TestKind
	Name string // for TestName
}

// NameTest returns a node test matching elements (or attributes, on the
// attribute axis) with the given name.
func NameTest(name string) NodeTest { return NodeTest{Kind: TestName, Name: name} }

// StarTest matches any node of the axis' principal kind.
func StarTest() NodeTest { return NodeTest{Kind: TestStar} }

// AnyNodeTest matches any node.
func AnyNodeTest() NodeTest { return NodeTest{Kind: TestNode} }

// TextTest matches text nodes.
func TextTest() NodeTest { return NodeTest{Kind: TestText} }

// String renders the node test in XPath syntax.
func (t NodeTest) String() string {
	switch t.Kind {
	case TestName:
		return t.Name
	case TestStar:
		return "*"
	case TestNode:
		return "node()"
	case TestText:
		return "text()"
	}
	return "test?"
}

// Matches reports whether node n satisfies the test on the given axis. The
// principal node kind is attribute for the attribute axis and element for
// every other axis.
func (t NodeTest) Matches(axis Axis, n *Node) bool {
	principal := ElementNode
	if axis == AxisAttribute {
		principal = AttributeNode
	}
	switch t.Kind {
	case TestName:
		return n.Kind == principal && n.Name == t.Name
	case TestStar:
		return n.Kind == principal
	case TestNode:
		return true
	case TestText:
		return n.Kind == TextNode
	}
	return false
}

// Step performs a navigational axis step from a single context node and
// returns the matching nodes in document order, duplicate-free. This is the
// primitive that nested-loop evaluation (TreeJoin / NLJoin) is built from.
func Step(ctx *Node, axis Axis, test NodeTest) []*Node {
	var out []*Node
	switch axis {
	case AxisChild:
		for _, c := range ctx.Children {
			if test.Matches(axis, c) {
				out = append(out, c)
			}
		}
	case AxisDescendant:
		appendDescendants(ctx, axis, test, &out)
	case AxisDescendantOrSelf:
		if test.Matches(axis, ctx) {
			out = append(out, ctx)
		}
		appendDescendants(ctx, axis, test, &out)
	case AxisAttribute:
		for _, a := range ctx.Attrs {
			if test.Matches(axis, a) {
				out = append(out, a)
			}
		}
	case AxisSelf:
		if test.Matches(axis, ctx) {
			out = append(out, ctx)
		}
	case AxisParent:
		if ctx.Parent != nil && test.Matches(axis, ctx.Parent) {
			out = append(out, ctx.Parent)
		}
	case AxisAncestor:
		for p := ctx.Parent; p != nil; p = p.Parent {
			if test.Matches(axis, p) {
				out = append(out, p)
			}
		}
		reverseNodes(out)
	case AxisAncestorOrSelf:
		for p := ctx; p != nil; p = p.Parent {
			if test.Matches(axis, p) {
				out = append(out, p)
			}
		}
		reverseNodes(out)
	case AxisFollowingSibling, AxisPrecedingSibling:
		if ctx.Parent == nil || ctx.Kind == AttributeNode {
			return nil
		}
		for _, sib := range ctx.Parent.Children {
			if sib == ctx {
				continue
			}
			after := sib.Pre > ctx.Pre
			if (axis == AxisFollowingSibling) == after && test.Matches(axis, sib) {
				out = append(out, sib)
			}
		}
	case AxisFollowing:
		// All nodes after the end of ctx's subtree, in document order
		// (attributes are not on the following axis).
		for pre := ctx.End() + 1; pre < len(ctx.Doc.Nodes); pre++ {
			n := ctx.Doc.Nodes[pre]
			if n.Kind == AttributeNode {
				continue
			}
			if test.Matches(axis, n) {
				out = append(out, n)
			}
		}
	case AxisPreceding:
		// All nodes strictly before ctx that are not its ancestors.
		for pre := 1; pre < ctx.Pre; pre++ {
			n := ctx.Doc.Nodes[pre]
			if n.Kind == AttributeNode || n.Contains(ctx) {
				continue
			}
			if test.Matches(axis, n) {
				out = append(out, n)
			}
		}
	}
	return out
}

// appendDescendants walks the subtree below ctx in document order,
// appending matching element/text nodes (attributes are not on the
// descendant axis).
func appendDescendants(ctx *Node, axis Axis, test NodeTest, out *[]*Node) {
	for _, c := range ctx.Children {
		if test.Matches(axis, c) {
			*out = append(*out, c)
		}
		appendDescendants(c, axis, test, out)
	}
}

func reverseNodes(ns []*Node) {
	for i, j := 0, len(ns)-1; i < j; i, j = i+1, j-1 {
		ns[i], ns[j] = ns[j], ns[i]
	}
}
