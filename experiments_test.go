package xqtp

import (
	"strings"
	"testing"
)

// The experiment harness runs end to end at reduced scale, and the §5.3
// shape holds: NLJoin is much faster than both set-at-a-time algorithms on
// the selective positional chain.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var b strings.Builder
	opts := QuickExperimentOptions()
	if err := RunAll(&b, opts); err != nil {
		t.Fatalf("RunAll: %v\noutput so far:\n%s", err, b.String())
	}
	out := b.String()
	for _, want := range []string{
		"variants compile to the identical plan",
		"Figure 4", "Table 1", "Figure 6", "Section 5.3",
		"QE1", "QE6", "NLJoin", "TwigJoin", "SCJoin",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("experiment output missing %q", want)
		}
	}
}

func TestValidationPasses(t *testing.T) {
	var b strings.Builder
	if err := RunValidation(&b); err != nil {
		t.Fatalf("%v\n%s", err, b.String())
	}
}
