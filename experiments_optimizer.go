package xqtp

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"

	"xqtp/internal/join"
)

// The optimizer experiment scores the cost model itself rather than the
// kernels: per-step estimated vs actual cardinalities (q-error) for the
// paper workload, and the count-based emptiness proof's member skip rates
// over the mixed collection corpus.

// OptimizerCell is one measurement of the optimizer experiment. Step rows
// (Kind "step") carry one spine step's estimated and actual cardinality and
// their q-error; skip rows (Kind "skip") carry the per-corpus-query member
// skip counts.
type OptimizerCell struct {
	Kind  string `json:"kind"` // "step" or "skip"
	Query string `json:"query"`
	// Doc labels the document of a step row ("member-2100000") or is empty
	// for skip rows (which run over the mixed corpus).
	Doc  string `json:"doc,omitempty"`
	Step string `json:"step,omitempty"` // rendered spine step of step rows
	// Est and Act are the model's predicted and the measured number of
	// distinct bindings of the step (step rows).
	Est float64 `json:"est,omitempty"`
	Act int     `json:"act,omitempty"`
	// QError is max((est+1)/(act+1), (act+1)/(est+1)) — 1.0 is a perfect
	// estimate, and the factor reads the same whichever side is off.
	QError float64 `json:"q_error,omitempty"`
	// Members and Skipped are the corpus size and the members the emptiness
	// proof excluded from evaluation (skip rows).
	Members int `json:"members,omitempty"`
	Skipped int `json:"skipped,omitempty"`
}

// OptimizerReport is the machine-readable output of RunOptimizer. The
// optimizer_cells key identifies the report kind for benchdiff.
type OptimizerReport struct {
	Seed  int64           `json:"seed"`
	CPUs  int             `json:"cpus"`
	Note  string          `json:"note,omitempty"`
	Cells []OptimizerCell `json:"optimizer_cells"`
}

func qError(est float64, act int) float64 {
	a := float64(act) + 1
	e := est + 1
	if e > a {
		return e / a
	}
	return a / e
}

// optimizerStepRows scores the cost model's per-step estimates for one query
// over one document: every root-bound pattern operator of the Auto plan
// contributes one row per spine step. Downstream pattern operators consume
// derived bindings, so the document root is not their context and they are
// not scored.
func optimizerStepRows(q *Query, d *Document, name, docLabel string) ([]OptimizerCell, error) {
	p, err := q.physicalPlan(Auto)
	if err != nil {
		return nil, err
	}
	root := d.tree.RootNode()
	rootBound := p.RootBoundPatterns()
	var out []OptimizerCell
	for pi, pat := range p.Patterns() {
		if !rootBound[pi] {
			continue
		}
		est := join.ChooseEstimate(d.index, root, pat)
		acts := join.StepActuals(d.index, root, pat)
		for i, se := range est.Steps {
			act := -1
			if i < len(acts) {
				act = acts[i]
			}
			if act < 0 {
				continue
			}
			out = append(out, OptimizerCell{
				Kind:   "step",
				Query:  name,
				Doc:    docLabel,
				Step:   se.Step.StepString(),
				Est:    se.Out,
				Act:    act,
				QError: qError(se.Out, act),
			})
		}
	}
	return out, nil
}

// RunOptimizer measures the cost model: per-step q-errors for the Table 1
// workload over the MemBeR documents and the Fig. 1/Fig. 4 queries over an
// XMark document, then the emptiness proof's member skip counts over the
// mixed collection corpus. If jsonPath is non-empty the machine-readable
// report is also written there.
func RunOptimizer(w io.Writer, opts ExperimentOptions, jsonPath string) error {
	fmt.Fprintf(w, "Optimizer: per-step cardinality estimates vs actuals, and corpus member skipping\n\n")
	report := OptimizerReport{Seed: opts.Seed, CPUs: runtime.NumCPU()}

	type workloadDoc struct {
		label string
		doc   *Document
		qs    []PaperQuery
	}
	var docs []workloadDoc
	for i, sz := range opts.Table1Sizes {
		docs = append(docs, workloadDoc{
			label: fmt.Sprintf("member-%d", sz),
			doc:   NewMemberDocument(opts.Seed+int64(i), sz),
			qs:    QEQueries,
		})
	}
	xmarkQs := append(append([]PaperQuery{}, Figure1Queries...), PaperQuery{"Fig4", Fig4Query})
	docs = append(docs, workloadDoc{
		label: fmt.Sprintf("xmark-%d", opts.Fig6People),
		doc:   NewXMarkDocument(opts.Seed, opts.Fig6People),
		qs:    xmarkQs,
	})

	fmt.Fprintf(w, "%-6s %-16s %-40s %12s %10s %8s\n",
		"query", "doc", "step", "est", "act", "q-err")
	for _, wd := range docs {
		for _, pq := range wd.qs {
			if err := opts.checkpoint(); err != nil {
				return err
			}
			q, err := PrepareCached(pq.Query)
			if err != nil {
				return fmt.Errorf("%s: %w", pq.Name, err)
			}
			rows, err := optimizerStepRows(q, wd.doc, pq.Name, wd.label)
			if err != nil {
				return fmt.Errorf("%s over %s: %w", pq.Name, wd.label, err)
			}
			for _, c := range rows {
				fmt.Fprintf(w, "%-6s %-16s %-40s %12.1f %10d %8.2f\n",
					c.Query, c.Doc, c.Step, c.Est, c.Act, c.QError)
			}
			report.Cells = append(report.Cells, rows...)
		}
	}

	// Skip rows: the mixed MemBeR/XMark corpus, where each root-bound query
	// provably cannot match roughly half the members.
	fmt.Fprintf(w, "\n%-16s %-8s %-8s %-8s\n", "query", "docs", "skipped", "evaluated")
	workers := runtime.NumCPU()
	for _, nDocs := range opts.CollectionSizes {
		corpus, err := LoadCorpus(collectionSources(nDocs, opts.Seed), 0)
		if err != nil {
			return err
		}
		for _, pq := range collectionQueries {
			if err := opts.checkpoint(); err != nil {
				return err
			}
			q, err := Prepare(pq.Query)
			if err != nil {
				return fmt.Errorf("%s: %w", pq.Name, err)
			}
			_, rs, err := corpus.RunParallelStats(q, Auto, workers)
			if err != nil {
				return fmt.Errorf("%s over %d docs: %w", pq.Name, nDocs, err)
			}
			fmt.Fprintf(w, "%-16s %-8d %-8d %-8d\n",
				pq.Name, rs.Members, rs.Skipped, rs.Members-rs.Skipped)
			report.Cells = append(report.Cells, OptimizerCell{
				Kind:    "skip",
				Query:   pq.Name,
				Members: rs.Members,
				Skipped: rs.Skipped,
			})
		}
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "(report written to %s)\n", jsonPath)
	}
	return nil
}
