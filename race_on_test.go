//go:build race

package xqtp

// raceEnabled scales the cancellation-latency assertions: under the race
// detector every atomic and channel operation is instrumented, so wall-clock
// bounds that hold comfortably in a normal build need generous headroom.
const raceEnabled = true
