package xqtp

import (
	"fmt"
	"strings"
)

// PaperQuery is a named query from the paper.
type PaperQuery struct {
	Name  string
	Query string
}

// Q1a, Q1b, Q1c, Q2, Q3, Q4, Q5 — the motivating queries of Fig. 1.
var Figure1Queries = []PaperQuery{
	{"Q1a", `$d//person[emailaddress]/name`},
	{"Q1b", `(for $x in $d//person[emailaddress] return $x)/name`},
	{"Q1c", `let $x := for $y in $d//person where $y/emailaddress return $y return $x/name`},
	{"Q2", `$d//person[name = "John"]/emailaddress`},
	{"Q3", `$d//person[1]/name`},
	{"Q4", `$d//person[name = "John"]/emailaddress[1]`},
	{"Q5", `for $x in $d//person[emailaddress] return $x/name`},
}

// QEQueries are the synthetic queries of Fig. 5 (Table 1's workload). QE1–3
// use child axes below the first descendant step; QE4–6 are the same
// shapes with all axes replaced by descendant.
var QEQueries = []PaperQuery{
	{"QE1", `$input/desc::t01[child::t02[child::t03[child::t04]]]`},
	{"QE2", `$input/desc::t01/child::t02[1]/child::t03[child::t04]`},
	{"QE3", `$input/desc::t01[child::t02[child::t03]/child::t04[child::t03]]`},
	{"QE4", `$input/desc::t01[desc::t02[desc::t03[desc::t04]]]`},
	{"QE5", `$input/desc::t01/desc::t02[1]/desc::t03[desc::t04]`},
	{"QE6", `$input/desc::t01[desc::t02[desc::t03]/desc::t04[desc::t03]]`},
}

// Fig4Query is the §5.1 path expression evaluated in Fig. 4.
const Fig4Query = `$input/site/people/person[emailaddress]/profile/interest`

// XMarkQueryPair is an XMark-like path query in its child form and the
// variant where child steps are replaced by descendant steps without
// changing the result (Fig. 6).
type XMarkQueryPair struct {
	Name       string
	Child      string
	Descendant string
}

// Figure6Queries are the XMark query pairs of Fig. 6.
var Figure6Queries = []XMarkQueryPair{
	{
		"XM-email",
		`$input/site/people/person[emailaddress]/name`,
		`$input//person[emailaddress]//name`,
	},
	{
		"XM-increase",
		`$input/site/open_auctions/open_auction/bidder/increase`,
		`$input//open_auction//increase`,
	},
	{
		"XM-price",
		`$input/site/closed_auctions/closed_auction/price`,
		`$input//closed_auction//price`,
	},
	{
		"XM-interest",
		`$input/site/people/person/profile/interest`,
		`$input//person//interest`,
	},
}

// Section53Query builds the §5.3 chain (/t1[1])^k.
func Section53Query(k int) string {
	var b strings.Builder
	for i := 0; i < k; i++ {
		b.WriteString("/t1[1]")
	}
	return b.String()
}

// Fig4Variants generates the syntactic variants of Fig4Query used in the
// §5.1 validation: every way of replacing / operators by for clauses
// (split masks over the four step boundaries), optionally expressing the
// predicate as a where clause. The paper used 20 variants; the full
// enumeration yields 24.
func Fig4Variants() []string {
	return PathVariants("$input",
		[]string{"site", "people", "person", "profile", "interest"},
		2, "emailaddress")
}

// PathVariants mechanically enumerates the syntactic variants of the path
// root/steps[0]/…/steps[predStep][pred]/…: every subset of step boundaries
// becomes a for clause, and whenever a variable is bound exactly at the
// predicate step the predicate is additionally expressed as a where clause.
// This is the §5.1 variant generator, applicable to any child-step family.
func PathVariants(root string, steps []string, predStep int, pred string) []string {
	var out []string
	for mask := 0; mask < 1<<(len(steps)-1); mask++ {
		out = append(out, buildVariant(root, steps, predStep, pred, mask, false))
		if pred != "" && mask&(1<<predStep) != 0 {
			out = append(out, buildVariant(root, steps, predStep, pred, mask, true))
		}
	}
	return out
}

// buildVariant renders one variant: mask bit i set means "break after step
// i" (bind a fresh variable there).
func buildVariant(root string, steps []string, predStep int, pred string, mask int, predAsWhere bool) string {
	type segment struct {
		path    []string
		predVar bool // segment ends at the predicate step
	}
	var segs []segment
	cur := segment{}
	for i, s := range steps {
		step := s
		if i == predStep && pred != "" && !predAsWhere {
			step = s + "[" + pred + "]"
		}
		cur.path = append(cur.path, step)
		if i == predStep {
			cur.predVar = true
		}
		if i < len(steps)-1 && mask&(1<<i) != 0 {
			segs = append(segs, cur)
			cur = segment{}
		}
	}
	segs = append(segs, cur)

	if len(segs) == 1 {
		return root + "/" + strings.Join(segs[0].path, "/")
	}
	var b strings.Builder
	b.WriteString("for ")
	prev := root
	whereVar := ""
	for i := 0; i < len(segs)-1; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		v := fmt.Sprintf("$x%d", i+1)
		fmt.Fprintf(&b, "%s in %s/%s", v, prev, strings.Join(segs[i].path, "/"))
		if segs[i].predVar && predAsWhere {
			whereVar = v
		}
		prev = v
	}
	if predAsWhere && whereVar != "" {
		fmt.Fprintf(&b, " where %s/%s", whereVar, pred)
	}
	fmt.Fprintf(&b, " return %s/%s", prev, strings.Join(segs[len(segs)-1].path, "/"))
	return b.String()
}
